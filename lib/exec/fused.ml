open Ir
(** Fused threaded-code execution engine.

    The closure engine ({!Engine}) pays one indirect closure call per IR op
    per execution — exactly the per-op dispatch overhead the paper's
    limpetC++ baseline suffers from.  This engine removes it for
    straight-line code: after slot allocation, every region body is
    flattened into a flat {!instr} array executed by one tight dispatch
    loop (an OCaml jump-table [match] instead of a closure call per op),
    and a peephole superinstruction pass over the flat form fuses the
    dominant op pairs of ionic kernels:

    - [arith.mulf] + [arith.addf] whose product is single-use → one fused
      multiply-add instruction (numerically identical: both roundings are
      kept, the fusion only removes dispatch and the intermediate register
      round-trip);
    - [memref.load] + arith op + [memref.store] chains → one
      load-op-store instruction;
    - [vector.load] + vector arith + [vector.store] triples → one
      load-op-store instruction over the whole width;
    - [math.exp]/[math.expm1]-style calls feeding a single arith consumer
      → one math-op instruction.

    Structured ops ([scf.for], [scf.if]), calls and anything else not
    specialized fall back to the closure path through
    {!Engine.compile_op}, with nested regions compiled by this engine, so
    the hot straight-line loop bodies of generated kernels always take the
    flat path.  Register-file accesses use unchecked reads/writes (slot
    indices are assigned by the compiler and always in bounds); memref
    accesses keep their bounds checks, with contiguous vector accesses
    checked once per vector rather than once per lane. *)

module E = Engine

let fail = E.fail

(* Flat threaded-code instructions.  Integer fields are register-file slot
   indices resolved at compile time; [w] fields are vector widths.
   Function-valued fields hold static math/arith closures (one indirect
   call, amortized over the work they do). *)
type instr =
  (* scalar f64 *)
  | CstF of int * float  (** d, value *)
  | Add of int * int * int  (** d <- a +. c *)
  | Sub of int * int * int
  | Mul of int * int * int
  | Div of int * int * int
  | Fma of int * int * int * int  (** d <- a *. b +. c (two roundings) *)
  | Fms of int * int * int * int  (** d <- a *. b -. c *)
  | Fsm of int * int * int * int  (** d <- c -. a *. b *)
  | Add3 of int * int * int * int  (** d <- (a +. b) +. c *)
  | Mul3 of int * int * int * int  (** d <- (a *. b) *. c *)
  | SubMul of int * int * int * int  (** d <- (a -. b) *. c *)
  | AddMul of int * int * int * int  (** d <- (a +. b) *. c *)
  | SubAdd of int * int * int * int  (** d <- (a -. b) +. c *)
  | Neg of int * int
  | FBinG of int * int * int * (float -> float -> float)
      (** generic float binop: min/max/rem *)
  | M1 of int * int * (float -> float)  (** d <- g a *)
  | M2 of int * int * int * (float -> float -> float)
  | M1B of int * int * int * (float -> float) * (float -> float -> float)
      (** d <- h (g a) c; operand order folded into h *)
  | Cmp of int * int * int * (float -> float -> bool)  (** b.(d) *)
  | Sel of int * int * int * int  (** d <- if b.(c) then x else y *)
  | CmpSel of int * int * int * (float -> float -> bool) * int * int
      (** d <- if g a c then x else y *)
  | SiToF of int * int
  | Load of int * int * int  (** f.(d) <- m.(mm).(i.(ix)) *)
  | Store of int * int * int  (** m.(mm).(i.(ix)) <- f.(a) *)
  | Los of int * int * int * (float -> float -> float) * int * int
      (** m1, i1, c, h, m2, i2: store (h (load m1 i1) c) m2 i2 *)
  (* scalar i64 *)
  | CstI of int * int
  | AddI of int * int * int
  | SubI of int * int * int
  | MulI of int * int * int
  | DivI of int * int * int
  | RemI of int * int * int
  | MadI of int * int * int * int  (** d <- a * b + c (addressing) *)
  (* vector f64 *)
  | VAdd of int * int * int * int  (** d, a, c, w *)
  | VSub of int * int * int * int
  | VMul of int * int * int * int
  | VDiv of int * int * int * int
  | VFma of int * int * int * int * int  (** d, a, b, c, w *)
  | VFms of int * int * int * int * int
  | VFsm of int * int * int * int * int
  | VAdd3 of int * int * int * int * int
  | VMul3 of int * int * int * int * int
  | VSubMul of int * int * int * int * int
  | VAddMul of int * int * int * int * int
  | VSubAdd of int * int * int * int * int
  | VNeg of int * int * int
  | VBinG of int * int * int * int * (float -> float -> float)
  | VM1 of int * int * int * (float -> float)  (** d, a, w, g *)
  | VM2 of int * int * int * int * (float -> float -> float)
  | VM1B of int * int * int * int * (float -> float) * (float -> float -> float)
  | VCmp of int * int * int * int * (float -> float -> bool)  (** vb dest *)
  | VSel of int * int * int * int * int  (** d, c(vb), x, y, w *)
  | VCmpSel of int * int * int * int * int * int * (float -> float -> bool)
      (** d, a, c, x, y, w, g *)
  | Bcast of int * int * int  (** vf.(d) <- splat f.(a), w *)
  | Iota of int * int  (** vi.(d) <- [0..w-1] *)
  | VLoad of int * int * int * int  (** d, mm, ix, w — contiguous *)
  | VStore of int * int * int * int  (** a, mm, ix, w *)
  | VLos of int * int * int * (float -> float -> float) * int * int * int
      (** m1, i1, c(vf), h, m2, i2, w *)
  | VGather of int * int * int * int  (** d, mm, ixs(vi), w *)
  | VScatter of int * int * int * int  (** a, mm, ixs(vi), w *)
  (* unchecked variants, selected when the bounds prover certified every
     access of the source op ({!Analysis.Bounds}); same semantics minus
     the OCaml bounds checks *)
  | LoadU of int * int * int
  | StoreU of int * int * int
  | LosU of int * int * int * (float -> float -> float) * int * int
  | VLoadU of int * int * int * int
  | VStoreU of int * int * int * int
  | VLosU of int * int * int * (float -> float -> float) * int * int * int
  | VGatherU of int * int * int * int
  | VScatterU of int * int * int * int
  (* everything else: closure fallback *)
  | Thunk of (unit -> unit)

let oob () = invalid_arg "index out of bounds"

(* The tight dispatch loop: one [match] per instruction, no closure call
   for specialized ops.  Register-file accesses are unchecked (indices are
   compiler-assigned); memref accesses are checked, vectors once per
   vector. *)
let exec_code (code : instr array) (e : E.env) : unit -> unit =
  let f = e.E.f
  and i = e.E.i
  and b = e.E.b
  and vf = e.E.vf
  and vi = e.E.vi
  and vb = e.E.vb
  and m = e.E.m in
  let n = Array.length code in
  fun () ->
    for pc = 0 to n - 1 do
      match Array.unsafe_get code pc with
      | CstF (d, x) -> Array.unsafe_set f d x
      | Add (d, a, c) ->
          Array.unsafe_set f d (Array.unsafe_get f a +. Array.unsafe_get f c)
      | Sub (d, a, c) ->
          Array.unsafe_set f d (Array.unsafe_get f a -. Array.unsafe_get f c)
      | Mul (d, a, c) ->
          Array.unsafe_set f d (Array.unsafe_get f a *. Array.unsafe_get f c)
      | Div (d, a, c) ->
          Array.unsafe_set f d (Array.unsafe_get f a /. Array.unsafe_get f c)
      | Fma (d, a, b_, c) ->
          Array.unsafe_set f d
            ((Array.unsafe_get f a *. Array.unsafe_get f b_)
            +. Array.unsafe_get f c)
      | Fms (d, a, b_, c) ->
          Array.unsafe_set f d
            ((Array.unsafe_get f a *. Array.unsafe_get f b_)
            -. Array.unsafe_get f c)
      | Fsm (d, a, b_, c) ->
          Array.unsafe_set f d
            (Array.unsafe_get f c
            -. (Array.unsafe_get f a *. Array.unsafe_get f b_))
      | Add3 (d, a, b_, c) ->
          Array.unsafe_set f d
            (Array.unsafe_get f a +. Array.unsafe_get f b_
            +. Array.unsafe_get f c)
      | Mul3 (d, a, b_, c) ->
          Array.unsafe_set f d
            (Array.unsafe_get f a *. Array.unsafe_get f b_
            *. Array.unsafe_get f c)
      | SubMul (d, a, b_, c) ->
          Array.unsafe_set f d
            ((Array.unsafe_get f a -. Array.unsafe_get f b_)
            *. Array.unsafe_get f c)
      | AddMul (d, a, b_, c) ->
          Array.unsafe_set f d
            ((Array.unsafe_get f a +. Array.unsafe_get f b_)
            *. Array.unsafe_get f c)
      | SubAdd (d, a, b_, c) ->
          Array.unsafe_set f d
            (Array.unsafe_get f a -. Array.unsafe_get f b_
            +. Array.unsafe_get f c)
      | Neg (d, a) -> Array.unsafe_set f d (-.Array.unsafe_get f a)
      | FBinG (d, a, c, h) ->
          Array.unsafe_set f d (h (Array.unsafe_get f a) (Array.unsafe_get f c))
      | M1 (d, a, g) -> Array.unsafe_set f d (g (Array.unsafe_get f a))
      | M2 (d, a, c, g) ->
          Array.unsafe_set f d (g (Array.unsafe_get f a) (Array.unsafe_get f c))
      | M1B (d, a, c, g, h) ->
          Array.unsafe_set f d
            (h (g (Array.unsafe_get f a)) (Array.unsafe_get f c))
      | Cmp (d, a, c, g) ->
          Array.unsafe_set b d (g (Array.unsafe_get f a) (Array.unsafe_get f c))
      | Sel (d, c, x, y) ->
          Array.unsafe_set f d
            (if Array.unsafe_get b c then Array.unsafe_get f x
             else Array.unsafe_get f y)
      | CmpSel (d, a, c, g, x, y) ->
          Array.unsafe_set f d
            (if g (Array.unsafe_get f a) (Array.unsafe_get f c) then
               Array.unsafe_get f x
             else Array.unsafe_get f y)
      | SiToF (d, a) -> Array.unsafe_set f d (float_of_int (Array.unsafe_get i a))
      | Load (d, mm, ix) ->
          Array.unsafe_set f d
            (Float.Array.get (Array.unsafe_get m mm) (Array.unsafe_get i ix))
      | Store (a, mm, ix) ->
          Float.Array.set (Array.unsafe_get m mm) (Array.unsafe_get i ix)
            (Array.unsafe_get f a)
      | Los (m1, i1, c, h, m2, i2) ->
          let x =
            Float.Array.get (Array.unsafe_get m m1) (Array.unsafe_get i i1)
          in
          Float.Array.set (Array.unsafe_get m m2) (Array.unsafe_get i i2)
            (h x (Array.unsafe_get f c))
      | CstI (d, x) -> Array.unsafe_set i d x
      | AddI (d, a, c) ->
          Array.unsafe_set i d (Array.unsafe_get i a + Array.unsafe_get i c)
      | SubI (d, a, c) ->
          Array.unsafe_set i d (Array.unsafe_get i a - Array.unsafe_get i c)
      | MulI (d, a, c) ->
          Array.unsafe_set i d (Array.unsafe_get i a * Array.unsafe_get i c)
      | DivI (d, a, c) ->
          Array.unsafe_set i d (Array.unsafe_get i a / Array.unsafe_get i c)
      | RemI (d, a, c) ->
          Array.unsafe_set i d (Array.unsafe_get i a mod Array.unsafe_get i c)
      | MadI (d, a, b_, c) ->
          Array.unsafe_set i d
            ((Array.unsafe_get i a * Array.unsafe_get i b_)
            + Array.unsafe_get i c)
      | VAdd (d, a, c, w) ->
          let x = Array.unsafe_get vf a
          and y = Array.unsafe_get vf c
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              (Float.Array.unsafe_get x l +. Float.Array.unsafe_get y l)
          done
      | VSub (d, a, c, w) ->
          let x = Array.unsafe_get vf a
          and y = Array.unsafe_get vf c
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              (Float.Array.unsafe_get x l -. Float.Array.unsafe_get y l)
          done
      | VMul (d, a, c, w) ->
          let x = Array.unsafe_get vf a
          and y = Array.unsafe_get vf c
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              (Float.Array.unsafe_get x l *. Float.Array.unsafe_get y l)
          done
      | VDiv (d, a, c, w) ->
          let x = Array.unsafe_get vf a
          and y = Array.unsafe_get vf c
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              (Float.Array.unsafe_get x l /. Float.Array.unsafe_get y l)
          done
      | VFma (d, a, b_, c, w) ->
          let x = Array.unsafe_get vf a
          and y = Array.unsafe_get vf b_
          and u = Array.unsafe_get vf c
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              ((Float.Array.unsafe_get x l *. Float.Array.unsafe_get y l)
              +. Float.Array.unsafe_get u l)
          done
      | VFms (d, a, b_, c, w) ->
          let x = Array.unsafe_get vf a
          and y = Array.unsafe_get vf b_
          and u = Array.unsafe_get vf c
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              ((Float.Array.unsafe_get x l *. Float.Array.unsafe_get y l)
              -. Float.Array.unsafe_get u l)
          done
      | VFsm (d, a, b_, c, w) ->
          let x = Array.unsafe_get vf a
          and y = Array.unsafe_get vf b_
          and u = Array.unsafe_get vf c
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              (Float.Array.unsafe_get u l
              -. (Float.Array.unsafe_get x l *. Float.Array.unsafe_get y l))
          done
      | VAdd3 (d, a, b_, c, w) ->
          let x = Array.unsafe_get vf a
          and y = Array.unsafe_get vf b_
          and u = Array.unsafe_get vf c
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              (Float.Array.unsafe_get x l +. Float.Array.unsafe_get y l
              +. Float.Array.unsafe_get u l)
          done
      | VMul3 (d, a, b_, c, w) ->
          let x = Array.unsafe_get vf a
          and y = Array.unsafe_get vf b_
          and u = Array.unsafe_get vf c
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              (Float.Array.unsafe_get x l *. Float.Array.unsafe_get y l
              *. Float.Array.unsafe_get u l)
          done
      | VSubMul (d, a, b_, c, w) ->
          let x = Array.unsafe_get vf a
          and y = Array.unsafe_get vf b_
          and u = Array.unsafe_get vf c
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              ((Float.Array.unsafe_get x l -. Float.Array.unsafe_get y l)
              *. Float.Array.unsafe_get u l)
          done
      | VAddMul (d, a, b_, c, w) ->
          let x = Array.unsafe_get vf a
          and y = Array.unsafe_get vf b_
          and u = Array.unsafe_get vf c
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              ((Float.Array.unsafe_get x l +. Float.Array.unsafe_get y l)
              *. Float.Array.unsafe_get u l)
          done
      | VSubAdd (d, a, b_, c, w) ->
          let x = Array.unsafe_get vf a
          and y = Array.unsafe_get vf b_
          and u = Array.unsafe_get vf c
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              (Float.Array.unsafe_get x l -. Float.Array.unsafe_get y l
              +. Float.Array.unsafe_get u l)
          done
      | VNeg (d, a, w) ->
          let x = Array.unsafe_get vf a and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l (-.Float.Array.unsafe_get x l)
          done
      | VBinG (d, a, c, w, h) ->
          let x = Array.unsafe_get vf a
          and y = Array.unsafe_get vf c
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              (h (Float.Array.unsafe_get x l) (Float.Array.unsafe_get y l))
          done
      | VM1 (d, a, w, g) ->
          let x = Array.unsafe_get vf a and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l (g (Float.Array.unsafe_get x l))
          done
      | VM2 (d, a, c, w, g) ->
          let x = Array.unsafe_get vf a
          and y = Array.unsafe_get vf c
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              (g (Float.Array.unsafe_get x l) (Float.Array.unsafe_get y l))
          done
      | VM1B (d, a, c, w, g, h) ->
          let x = Array.unsafe_get vf a
          and y = Array.unsafe_get vf c
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              (h (g (Float.Array.unsafe_get x l)) (Float.Array.unsafe_get y l))
          done
      | VCmp (d, a, c, w, g) ->
          let x = Array.unsafe_get vf a
          and y = Array.unsafe_get vf c
          and z = Array.unsafe_get vb d in
          for l = 0 to w - 1 do
            Array.unsafe_set z l
              (g (Float.Array.unsafe_get x l) (Float.Array.unsafe_get y l))
          done
      | VSel (d, c, x, y, w) ->
          let cc = Array.unsafe_get vb c
          and xx = Array.unsafe_get vf x
          and yy = Array.unsafe_get vf y
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              (if Array.unsafe_get cc l then Float.Array.unsafe_get xx l
               else Float.Array.unsafe_get yy l)
          done
      | VCmpSel (d, a, c, x, y, w, g) ->
          let aa = Array.unsafe_get vf a
          and cc = Array.unsafe_get vf c
          and xx = Array.unsafe_get vf x
          and yy = Array.unsafe_get vf y
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              (if g (Float.Array.unsafe_get aa l) (Float.Array.unsafe_get cc l)
               then Float.Array.unsafe_get xx l
               else Float.Array.unsafe_get yy l)
          done
      | Bcast (d, a, w) ->
          let x = Array.unsafe_get f a and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l x
          done
      | Iota (d, w) ->
          let z = Array.unsafe_get vi d in
          for l = 0 to w - 1 do
            Array.unsafe_set z l l
          done
      | VLoad (d, mm, ix, w) ->
          let buf = Array.unsafe_get m mm and base = Array.unsafe_get i ix in
          if base < 0 || base + w > Float.Array.length buf then oob ();
          let z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l (Float.Array.unsafe_get buf (base + l))
          done
      | VStore (a, mm, ix, w) ->
          let buf = Array.unsafe_get m mm and base = Array.unsafe_get i ix in
          if base < 0 || base + w > Float.Array.length buf then oob ();
          let x = Array.unsafe_get vf a in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set buf (base + l) (Float.Array.unsafe_get x l)
          done
      | VLos (m1, i1, c, h, m2, i2, w) ->
          let src = Array.unsafe_get m m1 and sbase = Array.unsafe_get i i1 in
          let dst = Array.unsafe_get m m2 and dbase = Array.unsafe_get i i2 in
          if sbase < 0 || sbase + w > Float.Array.length src then oob ();
          if dbase < 0 || dbase + w > Float.Array.length dst then oob ();
          let y = Array.unsafe_get vf c in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set dst (dbase + l)
              (h (Float.Array.unsafe_get src (sbase + l))
                 (Float.Array.unsafe_get y l))
          done
      | VGather (d, mm, ixs, w) ->
          let buf = Array.unsafe_get m mm
          and idx = Array.unsafe_get vi ixs
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              (Float.Array.get buf (Array.unsafe_get idx l))
          done
      | VScatter (a, mm, ixs, w) ->
          let buf = Array.unsafe_get m mm
          and idx = Array.unsafe_get vi ixs
          and x = Array.unsafe_get vf a in
          for l = 0 to w - 1 do
            Float.Array.set buf (Array.unsafe_get idx l)
              (Float.Array.unsafe_get x l)
          done
      | LoadU (d, mm, ix) ->
          Array.unsafe_set f d
            (Float.Array.unsafe_get (Array.unsafe_get m mm)
               (Array.unsafe_get i ix))
      | StoreU (a, mm, ix) ->
          Float.Array.unsafe_set (Array.unsafe_get m mm)
            (Array.unsafe_get i ix) (Array.unsafe_get f a)
      | LosU (m1, i1, c, h, m2, i2) ->
          let x =
            Float.Array.unsafe_get (Array.unsafe_get m m1)
              (Array.unsafe_get i i1)
          in
          Float.Array.unsafe_set (Array.unsafe_get m m2)
            (Array.unsafe_get i i2)
            (h x (Array.unsafe_get f c))
      | VLoadU (d, mm, ix, w) ->
          let buf = Array.unsafe_get m mm and base = Array.unsafe_get i ix in
          let z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l (Float.Array.unsafe_get buf (base + l))
          done
      | VStoreU (a, mm, ix, w) ->
          let buf = Array.unsafe_get m mm and base = Array.unsafe_get i ix in
          let x = Array.unsafe_get vf a in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set buf (base + l) (Float.Array.unsafe_get x l)
          done
      | VLosU (m1, i1, c, h, m2, i2, w) ->
          let src = Array.unsafe_get m m1 and sbase = Array.unsafe_get i i1 in
          let dst = Array.unsafe_get m m2 and dbase = Array.unsafe_get i i2 in
          let y = Array.unsafe_get vf c in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set dst (dbase + l)
              (h (Float.Array.unsafe_get src (sbase + l))
                 (Float.Array.unsafe_get y l))
          done
      | VGatherU (d, mm, ixs, w) ->
          let buf = Array.unsafe_get m mm
          and idx = Array.unsafe_get vi ixs
          and z = Array.unsafe_get vf d in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set z l
              (Float.Array.unsafe_get buf (Array.unsafe_get idx l))
          done
      | VScatterU (a, mm, ixs, w) ->
          let buf = Array.unsafe_get m mm
          and idx = Array.unsafe_get vi ixs
          and x = Array.unsafe_get vf a in
          for l = 0 to w - 1 do
            Float.Array.unsafe_set buf (Array.unsafe_get idx l)
              (Float.Array.unsafe_get x l)
          done
      | Thunk g -> g ()
    done

(* ------------------------------------------------------------------ *)
(* Instruction selection                                               *)
(* ------------------------------------------------------------------ *)

(* Use counts over the whole function: a fused-away intermediate must have
   exactly one consumer anywhere (including nested regions and yields). *)
let use_counts (fn : Func.func) : (int, int) Hashtbl.t =
  let h = Hashtbl.create 256 in
  let bump (v : Value.t) =
    Hashtbl.replace h v.id (1 + Option.value ~default:0 (Hashtbl.find_opt h v.id))
  in
  let rec walk (r : Op.region) =
    List.iter
      (fun (o : Op.op) ->
        Array.iter bump o.operands;
        Array.iter walk o.regions)
      r.Op.r_ops
  in
  walk fn.Func.f_body;
  h

let is_scalar_f (v : Value.t) = v.ty = Ty.F64
let is_vec_f (v : Value.t) = match v.ty with Ty.Vec (_, Ty.F64) -> true | _ -> false

(* Select one unfused instruction for an op, when a specialized encoding
   exists.  [None] means: fall back to the closure path. *)
let instr_of (c : E.fctx) (o : Op.op) : instr option =
  let op k = o.operands.(k) and res () = o.results.(0) in
  match o.kind with
  | Op.ConstF x -> Some (CstF (E.fslot c (res ()), x))
  | Op.ConstI x -> Some (CstI (E.islot c (res ()), x))
  | Op.BinF k when is_scalar_f (res ()) -> (
      let d = E.fslot c (res ()) and a = E.fslot c (op 0) and b = E.fslot c (op 1) in
      match k with
      | Op.FAdd -> Some (Add (d, a, b))
      | Op.FSub -> Some (Sub (d, a, b))
      | Op.FMul -> Some (Mul (d, a, b))
      | Op.FDiv -> Some (Div (d, a, b))
      | _ -> Some (FBinG (d, a, b, E.fbin_fn k)))
  | Op.BinF k when is_vec_f (res ()) -> (
      let d, w = E.vfslot c (res ()) in
      let a, _ = E.vfslot c (op 0) and b, _ = E.vfslot c (op 1) in
      match k with
      | Op.FAdd -> Some (VAdd (d, a, b, w))
      | Op.FSub -> Some (VSub (d, a, b, w))
      | Op.FMul -> Some (VMul (d, a, b, w))
      | Op.FDiv -> Some (VDiv (d, a, b, w))
      | _ -> Some (VBinG (d, a, b, w, E.fbin_fn k)))
  | Op.NegF when is_scalar_f (res ()) ->
      Some (Neg (E.fslot c (res ()), E.fslot c (op 0)))
  | Op.NegF when is_vec_f (res ()) ->
      let d, w = E.vfslot c (res ()) and a, _ = E.vfslot c (op 0) in
      Some (VNeg (d, a, w))
  | Op.BinI k when (res ()).ty = Ty.I64 -> (
      let d = E.islot c (res ()) and a = E.islot c (op 0) and b = E.islot c (op 1) in
      match k with
      | Op.IAdd -> Some (AddI (d, a, b))
      | Op.ISub -> Some (SubI (d, a, b))
      | Op.IMul -> Some (MulI (d, a, b))
      | Op.IDiv -> Some (DivI (d, a, b))
      | Op.IRem -> Some (RemI (d, a, b)))
  | Op.CmpF cc when is_scalar_f (op 0) ->
      Some (Cmp (E.bslot c (res ()), E.fslot c (op 0), E.fslot c (op 1), E.cmpf_fn cc))
  | Op.CmpF cc when is_vec_f (op 0) ->
      let a, w = E.vfslot c (op 0) in
      let x, _ = E.vfslot c (op 1) and d, _ = E.vbslot c (res ()) in
      Some (VCmp (d, a, x, w, E.cmpf_fn cc))
  | Op.Select when is_scalar_f (res ()) ->
      Some
        (Sel (E.fslot c (res ()), E.bslot c (op 0), E.fslot c (op 1), E.fslot c (op 2)))
  | Op.Select when is_vec_f (res ()) ->
      let d, w = E.vfslot c (res ()) in
      let cc, _ = E.vbslot c (op 0) in
      let x, _ = E.vfslot c (op 1) and y, _ = E.vfslot c (op 2) in
      Some (VSel (d, cc, x, y, w))
  | Op.SIToFP when is_scalar_f (res ()) ->
      Some (SiToF (E.fslot c (res ()), E.islot c (op 0)))
  | Op.Math name -> (
      match ((res ()).ty, E.unary_fn name, E.binary_fn name) with
      | Ty.F64, Some g, _ when Array.length o.operands = 1 ->
          Some (M1 (E.fslot c (res ()), E.fslot c (op 0), g))
      | Ty.F64, _, Some g when Array.length o.operands = 2 ->
          Some (M2 (E.fslot c (res ()), E.fslot c (op 0), E.fslot c (op 1), g))
      | Ty.Vec (_, Ty.F64), Some g, _ when Array.length o.operands = 1 ->
          let d, w = E.vfslot c (res ()) and a, _ = E.vfslot c (op 0) in
          Some (VM1 (d, a, w, g))
      | Ty.Vec (_, Ty.F64), _, Some g when Array.length o.operands = 2 ->
          let d, w = E.vfslot c (res ()) in
          let a, _ = E.vfslot c (op 0) and b, _ = E.vfslot c (op 1) in
          Some (VM2 (d, a, b, w, g))
      | _ -> None)
  | Op.Broadcast when is_vec_f (res ()) ->
      let d, w = E.vfslot c (res ()) in
      Some (Bcast (d, E.fslot c (op 0), w))
  | Op.Iota _ ->
      let d, w = E.vislot c (res ()) in
      Some (Iota (d, w))
  | Op.MemLoad ->
      let d = E.fslot c (res ()) and mm = E.mslot c (op 0)
      and ix = E.islot c (op 1) in
      Some
        (if Hashtbl.mem c.E.proved o.o_id then LoadU (d, mm, ix)
         else Load (d, mm, ix))
  | Op.MemStore ->
      let a = E.fslot c (op 0) and mm = E.mslot c (op 1)
      and ix = E.islot c (op 2) in
      Some
        (if Hashtbl.mem c.E.proved o.o_id then StoreU (a, mm, ix)
         else Store (a, mm, ix))
  | Op.VecLoad ->
      let d, w = E.vfslot c (res ()) in
      let mm = E.mslot c (op 0) and ix = E.islot c (op 1) in
      Some
        (if Hashtbl.mem c.E.proved o.o_id then VLoadU (d, mm, ix, w)
         else VLoad (d, mm, ix, w))
  | Op.VecStore ->
      let a, w = E.vfslot c (op 0) in
      let mm = E.mslot c (op 1) and ix = E.islot c (op 2) in
      Some
        (if Hashtbl.mem c.E.proved o.o_id then VStoreU (a, mm, ix, w)
         else VStore (a, mm, ix, w))
  | Op.Gather ->
      let d, _ = E.vfslot c (res ()) in
      let ixs, w = E.vislot c (op 1) in
      let mm = E.mslot c (op 0) in
      Some
        (if Hashtbl.mem c.E.proved o.o_id then VGatherU (d, mm, ixs, w)
         else VGather (d, mm, ixs, w))
  | Op.Scatter ->
      let a, w = E.vfslot c (op 0) in
      let ixs, _ = E.vislot c (op 2) in
      let mm = E.mslot c (op 1) in
      Some
        (if Hashtbl.mem c.E.proved o.o_id then VScatterU (a, mm, ixs, w)
         else VScatter (a, mm, ixs, w))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Peephole superinstruction fusion                                    *)
(* ------------------------------------------------------------------ *)

(* [h] with the fused value in the position [t] occupied in the consumer:
   [d <- h t other].  Flipping at selection time keeps one dispatch shape. *)
let consumer_fn (k : Op.fbin) (consumer : Op.op) (t : Value.t) :
    (float -> float -> float) * Value.t =
  let h = E.fbin_fn k in
  if consumer.Op.operands.(0).id = t.id then (h, consumer.Op.operands.(1))
  else ((fun x y -> h y x), consumer.Op.operands.(0))

let single_use (uc : (int, int) Hashtbl.t) (v : Value.t) : bool =
  Hashtbl.find_opt uc v.id = Some 1

(* One fused-result op: exactly one result, used exactly once. *)
let fusable_result (uc : (int, int) Hashtbl.t) (o : Op.op) : Value.t option =
  if Array.length o.results = 1 && single_use uc o.results.(0) then
    Some o.results.(0)
  else None

(* Producer/consumer superinstruction for a pure, single-use producer [p]
   whose unique consumer is [o].  In SSA straight-line code a pure
   single-use producer can always be sunk to its consumer (its operands
   are defined before it, nothing in between can redefine them, and no
   other op observes its result), so fusion does not require adjacency.
   Only returns encodings whose fused form stays as cheap as the unfused
   pair (direct dispatch arms, or a producer that already paid an
   indirect math call). *)
let pair_instr (c : E.fctx) (p : Op.op) (o : Op.op) : instr option =
  if Array.length p.Op.results <> 1 then None
  else
    let t = p.Op.results.(0) in
    let uses_t k = o.Op.operands.(k).id = t.id in
    match (p.Op.kind, o.Op.kind) with
    (* float arith pairs: the fused form keeps both rounding steps, and
       commuted consumers (t on either side of an add or mul) are
       value-identical by IEEE commutativity, so one encoding per combo
       suffices — except subtraction consumers, which need both operand
       orders *)
    | Op.BinF kp, Op.BinF ko when uses_t 0 || uses_t 1 -> (
        let combo =
          match (kp, ko, uses_t 0) with
          | Op.FMul, Op.FAdd, _ -> Some `Fma
          | Op.FMul, Op.FSub, true -> Some `Fms  (* t -. other *)
          | Op.FMul, Op.FSub, false -> Some `Fsm  (* other -. t *)
          | Op.FMul, Op.FMul, _ -> Some `Mul3
          | Op.FAdd, Op.FAdd, _ -> Some `Add3
          | Op.FAdd, Op.FMul, _ -> Some `AddMul
          | Op.FSub, Op.FAdd, _ -> Some `SubAdd
          | Op.FSub, Op.FMul, _ -> Some `SubMul
          | _ -> None
        in
        match combo with
        | None -> None
        | Some tag ->
            let a = p.Op.operands.(0) and b = p.Op.operands.(1) in
            let other =
              if uses_t 0 then o.Op.operands.(1) else o.Op.operands.(0)
            in
            if is_scalar_f t then
              let d = E.fslot c o.Op.results.(0)
              and pa = E.fslot c a
              and pb = E.fslot c b
              and oc = E.fslot c other in
              Some
                (match tag with
                | `Fma -> Fma (d, pa, pb, oc)
                | `Fms -> Fms (d, pa, pb, oc)
                | `Fsm -> Fsm (d, pa, pb, oc)
                | `Mul3 -> Mul3 (d, pa, pb, oc)
                | `Add3 -> Add3 (d, pa, pb, oc)
                | `AddMul -> AddMul (d, pa, pb, oc)
                | `SubAdd -> SubAdd (d, pa, pb, oc)
                | `SubMul -> SubMul (d, pa, pb, oc))
            else if is_vec_f t then
              let d, w = E.vfslot c o.Op.results.(0) in
              let pa, _ = E.vfslot c a in
              let pb, _ = E.vfslot c b in
              let oc, _ = E.vfslot c other in
              Some
                (match tag with
                | `Fma -> VFma (d, pa, pb, oc, w)
                | `Fms -> VFms (d, pa, pb, oc, w)
                | `Fsm -> VFsm (d, pa, pb, oc, w)
                | `Mul3 -> VMul3 (d, pa, pb, oc, w)
                | `Add3 -> VAdd3 (d, pa, pb, oc, w)
                | `AddMul -> VAddMul (d, pa, pb, oc, w)
                | `SubAdd -> VSubAdd (d, pa, pb, oc, w)
                | `SubMul -> VSubMul (d, pa, pb, oc, w))
            else None)
    (* unary math call feeding one arith consumer -> math-op *)
    | Op.Math name, Op.BinF k
      when Array.length p.Op.operands = 1 && (uses_t 0 || uses_t 1) -> (
        match E.unary_fn name with
        | None -> None
        | Some g ->
            let h, other = consumer_fn k o t in
            if is_scalar_f t then
              Some
                (M1B
                   ( E.fslot c o.Op.results.(0),
                     E.fslot c p.Op.operands.(0),
                     E.fslot c other,
                     g,
                     h ))
            else if is_vec_f t then
              let d, w = E.vfslot c o.Op.results.(0) in
              let a, _ = E.vfslot c p.Op.operands.(0) in
              let oc, _ = E.vfslot c other in
              Some (VM1B (d, a, oc, w, g, h))
            else None)
    (* cmpf feeding its select -> compare-select *)
    | Op.CmpF cc, Op.Select when uses_t 0 ->
        if is_scalar_f p.Op.operands.(0) && is_scalar_f o.Op.results.(0) then
          Some
            (CmpSel
               ( E.fslot c o.Op.results.(0),
                 E.fslot c p.Op.operands.(0),
                 E.fslot c p.Op.operands.(1),
                 E.cmpf_fn cc,
                 E.fslot c o.Op.operands.(1),
                 E.fslot c o.Op.operands.(2) ))
        else if is_vec_f p.Op.operands.(0) && is_vec_f o.Op.results.(0) then
          let d, w = E.vfslot c o.Op.results.(0) in
          let a, _ = E.vfslot c p.Op.operands.(0) in
          let u, _ = E.vfslot c p.Op.operands.(1) in
          let x, _ = E.vfslot c o.Op.operands.(1) in
          let y, _ = E.vfslot c o.Op.operands.(2) in
          Some (VCmpSel (d, a, u, x, y, w, E.cmpf_fn cc))
        else None
    (* muli + addi -> integer multiply-add (state addressing) *)
    | Op.BinI Op.IMul, Op.BinI Op.IAdd
      when t.ty = Ty.I64 && (uses_t 0 || uses_t 1) ->
        let other = if uses_t 0 then o.Op.operands.(1) else o.Op.operands.(0) in
        Some
          (MadI
             ( E.islot c o.Op.results.(0),
               E.islot c p.Op.operands.(0),
               E.islot c p.Op.operands.(1),
               E.islot c other ))
    | _ -> None

(* Try to fuse the head of [ops] with its successors (adjacency patterns
   over memory ops, which cannot be sunk); [clean o] must hold for every
   consumed successor — it rejects ops already claimed by a
   producer/consumer pair (consuming a claimed op would leave its
   deferred partner un-emitted and its slot stale).  Returns the fused
   instruction and the remaining ops.

   The scalar load-op-store fusion is order-preserving (one read, then
   one write — exactly the unfused sequence), so it is sound regardless
   of aliasing.  The vector fusion is NOT: [VLos] interleaves per-lane
   reads and writes, whereas the unfused triple reads the whole vector
   before writing any lane.  If the store window overlaps the load
   window ahead of it (e.g. load at [i], store at [i+1] on the same
   buffer), lane [l]'s write lands on an index a later lane still has to
   read, and the fused result diverges.  So vector fusion asks the
   footprint oracle {!Analysis.Footprint.local_alias} and only proceeds
   when the two windows are provably identical ([Same] — writes trail
   reads lane by lane), provably disjoint, or on distinct SSA memrefs.
   [DistinctMem] relies on the kernel ABI: the driver never passes
   overlapping buffers for two distinct memref parameters (state,
   externals, params, tables and rows are separate allocations).
   [May] refuses the fusion. *)
let try_fuse (c : E.fctx) (uc : (int, int) Hashtbl.t)
    ~(defs : Value.t -> Op.op option) ~(clean : Op.op -> bool) (o1 : Op.op)
    (rest : Op.op list) : (instr * Op.op list) option =
  let both_proved o3 =
    Hashtbl.mem c.E.proved o1.Op.o_id && Hashtbl.mem c.E.proved o3.Op.o_id
  in
  match (o1.Op.kind, rest) with
  (* memref.load + arith op + memref.store -> load-op-store *)
  | Op.MemLoad, o2 :: o3 :: rest3 when clean o2 && clean o3 -> (
      match (fusable_result uc o1, o2.Op.kind, o3.Op.kind) with
      | Some x, Op.BinF k, Op.MemStore
        when is_scalar_f x
             && (o2.Op.operands.(0).id = x.id || o2.Op.operands.(1).id = x.id)
             && o2.Op.operands.(0).id <> o2.Op.operands.(1).id ->
          (match fusable_result uc o2 with
          | Some y when o3.Op.operands.(0).id = y.id ->
              let h, other = consumer_fn k o2 x in
              let enc =
                ( E.mslot c o1.Op.operands.(0),
                  E.islot c o1.Op.operands.(1),
                  E.fslot c other,
                  h,
                  E.mslot c o3.Op.operands.(1),
                  E.islot c o3.Op.operands.(2) )
              in
              let m1, i1, cc, hh, m2, i2 = enc in
              Some
                ( (if both_proved o3 then LosU (m1, i1, cc, hh, m2, i2)
                   else Los (m1, i1, cc, hh, m2, i2)),
                  rest3 )
          | _ -> None)
      | _ -> None)
  (* vector.load + vector arith + vector.store -> vector load-op-store,
     gated on the alias oracle (see above) *)
  | Op.VecLoad, o2 :: o3 :: rest3 when clean o2 && clean o3 -> (
      match (fusable_result uc o1, o2.Op.kind, o3.Op.kind) with
      | Some x, Op.BinF k, Op.VecStore
        when is_vec_f x
             && (o2.Op.operands.(0).id = x.id || o2.Op.operands.(1).id = x.id)
             && o2.Op.operands.(0).id <> o2.Op.operands.(1).id ->
          (match fusable_result uc o2 with
          | Some y when o3.Op.operands.(0).id = y.id -> (
              let h, other = consumer_fn k o2 x in
              let cslot, w = E.vfslot c other in
              match
                Analysis.Footprint.local_alias ~defs
                  (o1.Op.operands.(0), o1.Op.operands.(1), w)
                  (o3.Op.operands.(1), o3.Op.operands.(2), w)
              with
              | Analysis.Footprint.May -> None
              | Analysis.Footprint.Same | Analysis.Footprint.Disjoint
              | Analysis.Footprint.DistinctMem ->
                  let m1 = E.mslot c o1.Op.operands.(0)
                  and i1 = E.islot c o1.Op.operands.(1)
                  and m2 = E.mslot c o3.Op.operands.(1)
                  and i2 = E.islot c o3.Op.operands.(2) in
                  Some
                    ( (if both_proved o3 then
                         VLosU (m1, i1, cslot, h, m2, i2, w)
                       else VLos (m1, i1, cslot, h, m2, i2, w)),
                      rest3 ))
          | _ -> None)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Calls                                                               *)
(* ------------------------------------------------------------------ *)

(* Caching call thunk.  The closure engine's [Call] pays, per invocation
   and per operand, a slot-table lookup plus a fresh [Rt.v] box (and a
   fresh argument array) — measurable on LUT-heavy kernels that call
   [lut_interp*] once per table per cell.  Here slots are resolved at
   compile time, the argument array is allocated once, scalar boxes are
   reused while the value is unchanged (total float order, so -0./0. and
   NaNs stay distinguishable), and vector boxes own a dedicated buffer
   blitted per call.  Loop-invariant arguments (table geometry, row
   pointers) therefore box once per kernel invocation instead of once per
   cell.  Safe because no callee retains its argument array: compiled
   functions copy arguments into their register file on entry, and the
   extern ABI receives values, not storage. *)
let compile_call (c : E.fctx) (o : Op.op) (name : string) : unit -> unit =
  let env = c.E.env in
  let callee = lazy (c.E.get name) in
  let n = Array.length o.Op.operands in
  let args = Array.make n (Rt.I 0) in
  let fill =
    Array.mapi
      (fun k (v : Value.t) ->
        match E.slot c v with
        | E.SF i ->
            fun () ->
              let x = Array.unsafe_get env.E.f i in
              (match Array.unsafe_get args k with
              | Rt.F old when Float.compare old x = 0 -> ()
              | _ -> Array.unsafe_set args k (Rt.F x))
        | E.SI i ->
            fun () ->
              let x = Array.unsafe_get env.E.i i in
              (match Array.unsafe_get args k with
              | Rt.I old when old = x -> ()
              | _ -> Array.unsafe_set args k (Rt.I x))
        | E.SB i ->
            fun () ->
              let x = Array.unsafe_get env.E.b i in
              (match Array.unsafe_get args k with
              | Rt.B old when old = x -> ()
              | _ -> Array.unsafe_set args k (Rt.B x))
        | E.SM i ->
            fun () ->
              let m = Array.unsafe_get env.E.m i in
              (match Array.unsafe_get args k with
              | Rt.M old when old == m -> ()
              | _ -> Array.unsafe_set args k (Rt.M m))
        | E.SVF (i, w) ->
            let buf = Float.Array.create w in
            args.(k) <- Rt.VF buf;
            fun () -> Float.Array.blit (Array.unsafe_get env.E.vf i) 0 buf 0 w
        | E.SVI (i, w) ->
            let buf = Array.make w 0 in
            args.(k) <- Rt.VI buf;
            fun () -> Array.blit (Array.unsafe_get env.E.vi i) 0 buf 0 w
        | E.SVB (i, w) ->
            let buf = Array.make w false in
            args.(k) <- Rt.VB buf;
            fun () -> Array.blit (Array.unsafe_get env.E.vb i) 0 buf 0 w)
      o.Op.operands
  in
  let results = o.Op.results in
  if Array.length results = 0 then
    fun () ->
      for k = 0 to n - 1 do
        (Array.unsafe_get fill k) ()
      done;
      ignore (Lazy.force callee args)
  else
    fun () ->
      for k = 0 to n - 1 do
        (Array.unsafe_get fill k) ()
      done;
      let rets = Lazy.force callee args in
      Array.iteri (fun k r -> E.set_slot c r rets.(k)) results

(* ------------------------------------------------------------------ *)
(* Region compilation                                                  *)
(* ------------------------------------------------------------------ *)

let compile_func ?proved ~(get : string -> E.compiled) (fn : Func.func) :
    E.compiled =
  Obs.Tracer.with_span ("fused.compile:" ^ fn.Func.f_name) @@ fun () ->
  let c = E.make_fctx ?proved fn ~get in
  let uc = use_counts fn in
  (* value id -> defining op, for the load/store alias oracle *)
  let defs_tbl : (int, Op.op) Hashtbl.t = Hashtbl.create 256 in
  Op.iter_region
    (fun o ->
      Array.iter
        (fun (r : Value.t) -> Hashtbl.replace defs_tbl r.id o)
        o.Op.results)
    fn.Func.f_body;
  let defs (v : Value.t) = Hashtbl.find_opt defs_tbl v.id in
  let rec region ~(on_yield : Op.op -> unit -> unit) (r : Op.region) :
      unit -> unit =
    let ops = r.Op.r_ops in
    (* Producer/consumer pairing.  [user_of] maps a value id to the op of
       this region list that reads it directly (only consulted for
       single-use values, where that op is THE use).  Deferred producers
       are skipped at their own position and emitted fused into their
       consumer; [claimed] marks both ends of every pair so the adjacency
       patterns below cannot double-consume them. *)
    let user_of : (int, Op.op) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (o : Op.op) ->
        Array.iter
          (fun (v : Value.t) ->
            if not (Hashtbl.mem user_of v.id) then Hashtbl.add user_of v.id o)
          o.operands)
      ops;
    let deferred : (int, unit) Hashtbl.t = Hashtbl.create 16 in
    let pair_of : (int, Op.op) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (p : Op.op) ->
        (* an op already consuming another pair must stay in place, or the
           producer fused into it would never be emitted *)
        if
          Array.length p.Op.results = 1
          && single_use uc p.Op.results.(0)
          && not (Hashtbl.mem pair_of p.Op.o_id)
        then
          match Hashtbl.find_opt user_of p.Op.results.(0).id with
          | Some o
            when (not (Hashtbl.mem pair_of o.Op.o_id))
                 && (not (Hashtbl.mem deferred o.Op.o_id))
                 && pair_instr c p o <> None ->
              Hashtbl.add deferred p.Op.o_id ();
              Hashtbl.add pair_of o.Op.o_id p
          | _ -> ())
      ops;
    let clean (o : Op.op) =
      (not (Hashtbl.mem deferred o.Op.o_id))
      && not (Hashtbl.mem pair_of o.Op.o_id)
    in
    let rec sel (ops : Op.op list) (acc : instr list) : instr list =
      match ops with
      | [] -> List.rev acc
      | o1 :: rest when Hashtbl.mem deferred o1.Op.o_id -> sel rest acc
      | o1 :: rest -> (
          match Hashtbl.find_opt pair_of o1.Op.o_id with
          | Some p -> (
              match pair_instr c p o1 with
              | Some k -> sel rest (k :: acc)
              | None -> fail "fused: inconsistent pair selection")
          | None -> (
              match o1.Op.kind with
              | Op.Yield -> sel rest (Thunk (on_yield o1) :: acc)
              | _ -> (
                  match try_fuse c uc ~defs ~clean o1 rest with
                  | Some (instr, rest') -> sel rest' (instr :: acc)
                  | None ->
                      let instr =
                        match (instr_of c o1, o1.Op.kind) with
                        | Some k, _ -> k
                        | None, Op.Call name -> Thunk (compile_call c o1 name)
                        | None, _ ->
                            Thunk (E.compile_op c ~compile_region:region o1)
                      in
                      sel rest (instr :: acc))))
    in
    let code = Array.of_list (sel ops []) in
    exec_code code c.E.env
  in
  let body =
    region fn.Func.f_body ~on_yield:(fun _ ->
        fail "yield at function top level")
  in
  E.finish c fn ~body

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Compile a whole module with the fused engine; returns a lazy
    per-function runner lookup (same calling convention as
    {!Engine.compile_module}). *)
let compile_module ?externs ?proved (m : Func.modl) : string -> E.compiled =
  E.module_linker ?externs m (fun ~get f -> compile_func ?proved ~get f)

(** Compile and run one function of a module. *)
let run ?externs (m : Func.modl) (name : string) (args : Rt.v array) :
    Rt.v array =
  (compile_module ?externs m) name args
