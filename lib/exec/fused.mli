(** Fused threaded-code execution engine.

    Same IR semantics and calling convention as {!Engine}, but
    straight-line region bodies are flattened into a flat instruction
    array executed by a tight dispatch loop, with a peephole
    superinstruction pass fusing mul+add, load-op-store, vector
    load/compute/store triples, and math-call+consumer pairs.  Fusions
    preserve bitwise numerics (every rounding step of the unfused form is
    kept).  Structured ops fall back to {!Engine.compile_op} with nested
    regions compiled by this engine.

    Compiled functions are NOT reentrant: one register file per
    compilation, so use one compiled instance per thread. *)

val compile_func :
  ?proved:(int, unit) Hashtbl.t ->
  get:(string -> Engine.compiled) ->
  Ir.Func.func ->
  Engine.compiled
(** Compile one function with the fused engine (for custom linkers).
    [proved] op ids (from [Analysis.Bounds]) compile to unchecked
    load/store instructions. *)

val compile_module :
  ?externs:Rt.registry ->
  ?proved:(int, unit) Hashtbl.t ->
  Ir.Func.modl ->
  string ->
  Engine.compiled
(** Lazy per-function compiler; unknown names fall back to the extern
    registry.  Local calls between module functions are supported.
    [proved] elides bounds checks on the listed op ids. *)

val run :
  ?externs:Rt.registry -> Ir.Func.modl -> string -> Rt.v array -> Rt.v array
(** Compile and invoke one function. *)
