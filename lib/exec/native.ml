(* Runtime C compilation and dynamic loading (see native.mli). *)

type toolchain = { cc : string; id : string }

type lib = { c_path : string; s_path : string; handle : nativeint }

let source_path (l : lib) = l.c_path
let so_path (l : lib) = l.s_path

let flags = [ "-O3"; "-shared"; "-fPIC"; "-ffp-contract=off"; "-fno-fast-math" ]
let flags_id = String.concat " " flags

exception
  Compile_error of { cc : string; file : string; status : int; log : string }

external dl_open : string -> nativeint = "limpet_native_dlopen"
external dl_sym : nativeint -> string -> nativeint = "limpet_native_dlsym"
external dl_close : nativeint -> unit = "limpet_native_dlclose"

external call_kernel : nativeint -> int array -> floatarray -> floatarray array -> unit
  = "limpet_native_call"

let _ = dl_close (* dlclose is deliberately never called on cached libs:
                    outstanding bound closures must stay valid *)

(* -- toolchain probe ------------------------------------------------- *)

let executable (p : string) : bool =
  Sys.file_exists p
  && (not (Sys.is_directory p))
  && try Unix.access p [ Unix.X_OK ]; true with _ -> false

let find_tool (name : string) : string option =
  if String.contains name '/' then if executable name then Some name else None
  else
    let path = Option.value ~default:"" (Sys.getenv_opt "PATH") in
    String.split_on_char ':' path
    |> List.find_map (fun d ->
           if d = "" then None
           else
             let p = Filename.concat d name in
             if executable p then Some p else None)

let version_line (cc : string) : string =
  try
    let ic =
      Unix.open_process_in (Filename.quote cc ^ " --version 2>/dev/null")
    in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    line
  with _ -> ""

let mk_toolchain (path : string) : toolchain =
  let v = version_line path in
  { cc = path; id = (if v = "" then path else path ^ " | " ^ v) }

let probe () : toolchain option =
  match Sys.getenv_opt "LIMPET_CC" with
  | Some cc when String.trim cc <> "" ->
      (* explicit override: a broken value means "unavailable", it does
         not fall back to other compilers *)
      Option.map mk_toolchain (find_tool (String.trim cc))
  | _ ->
      Option.map mk_toolchain
        (List.find_map find_tool [ "cc"; "gcc"; "clang" ])

let probed : toolchain option Lazy.t = lazy (probe ())

(* test hook: [Some forced] overrides the probe inside with_toolchain *)
let forced : toolchain option option ref = ref None

let toolchain () : toolchain option =
  match !forced with Some tc -> tc | None -> Lazy.force probed

let available () : bool = toolchain () <> None

let with_toolchain (tc : toolchain option) (f : unit -> 'a) : 'a =
  let saved = !forced in
  forced := Some tc;
  Fun.protect ~finally:(fun () -> forced := saved) f

(* -- session artifact directory -------------------------------------- *)

let session_dir : string option ref = ref None

let dir () : string =
  match !session_dir with
  | Some d -> d
  | None ->
      let base = Filename.get_temp_dir_name () in
      let rec mk n =
        let d =
          Filename.concat base
            (Printf.sprintf "limpetmlir-%d-%d" (Unix.getpid ()) n)
        in
        match Unix.mkdir d 0o700 with
        | () -> d
        | exception Unix.Unix_error (Unix.EEXIST, _, _) -> mk (n + 1)
      in
      let d = mk 0 in
      session_dir := Some d;
      at_exit (fun () ->
          (try
             Array.iter
               (fun f -> try Sys.remove (Filename.concat d f) with _ -> ())
               (Sys.readdir d)
           with _ -> ());
          (try Unix.rmdir d with _ -> ());
          session_dir := None);
      d

(* -- compile + load -------------------------------------------------- *)

let read_log (path : string) : string =
  try
    let ic = open_in_bin path in
    let n = min (in_channel_length ic) 8192 in
    let s = really_input_string ic n in
    close_in ic;
    s
  with _ -> ""

let write_file (path : string) (s : string) : unit =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let compile (tc : toolchain) ~(stem : string) ~(src : string) : lib * float =
  let d = dir () in
  let c_path = Filename.concat d (stem ^ ".c") in
  let s_path = Filename.concat d (stem ^ ".so") in
  let log_path = Filename.concat d (stem ^ ".log") in
  write_file c_path src;
  let cmd =
    String.concat " "
      ((Filename.quote tc.cc :: flags)
      @ [ "-o"; Filename.quote s_path; Filename.quote c_path; "-lm" ])
    ^ " 2> " ^ Filename.quote log_path
  in
  let t0 = Unix.gettimeofday () in
  let status = Sys.command cmd in
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let log = read_log log_path in
  if status <> 0 then
    raise (Compile_error { cc = tc.cc; file = c_path; status; log });
  match dl_open s_path with
  | handle -> ({ c_path; s_path; handle }, ms)
  | exception Failure msg ->
      raise (Compile_error { cc = tc.cc; file = c_path; status = 0; log = msg })

(* -- argument marshalling -------------------------------------------- *)

type cls = CI | CF | CM

let bind (l : lib) ~(symbol : string) ~(params : Ir.Ty.t list) :
    Rt.v array -> Rt.v array =
  let fn = dl_sym l.handle symbol in
  let classes =
    Array.of_list
      (List.map
         (fun (t : Ir.Ty.t) ->
           match t with
           | Ir.Ty.I64 | Ir.Ty.I1 -> CI
           | Ir.Ty.F64 -> CF
           | Ir.Ty.Memref -> CM
           | Ir.Ty.Vec _ ->
               invalid_arg ("Native.bind: vector parameter for " ^ symbol))
         params)
  in
  let count c = Array.fold_left (fun n x -> if x = c then n + 1 else n) 0 classes in
  (* preallocated packs: one bound closure per thread, like every engine *)
  let ia = Array.make (count CI) 0 in
  let fa = Float.Array.make (count CF) 0.0 in
  let ma = Array.make (count CM) (Float.Array.create 0) in
  fun (args : Rt.v array) ->
    if Array.length args <> Array.length classes then
      invalid_arg ("Native: arity mismatch calling " ^ symbol);
    let ki = ref 0 and kf = ref 0 and km = ref 0 in
    Array.iteri
      (fun k (a : Rt.v) ->
        match (classes.(k), a) with
        | CI, Rt.I n ->
            ia.(!ki) <- n;
            incr ki
        | CI, Rt.B b ->
            ia.(!ki) <- (if b then 1 else 0);
            incr ki
        | CF, Rt.F x ->
            Float.Array.set fa !kf x;
            incr kf
        | CM, Rt.M m ->
            ma.(!km) <- m;
            incr km
        | _, a ->
            invalid_arg
              (Printf.sprintf "Native: argument %d of %s has type %s" k symbol
                 (Rt.type_name a)))
      args;
    call_kernel fn ia fa ma;
    [||]
