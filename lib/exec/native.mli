(** Native kernel execution: compile emitted C with the system toolchain
    at runtime, [dlopen] the shared object and call into it.

    This module is deliberately IR/codegen-agnostic — it ships source
    text to a C compiler and marshals {!Rt.v} argument vectors to the
    packed kernel ABI

    {[ void <symbol>(const int64_t *ia, const double *fa,
                     double *const *ma) ]}

    where int-like scalar parameters are packed into [ia], float scalars
    into [fa] and memrefs (as raw [floatarray] data pointers) into [ma],
    each class in declaration order.  [Codegen.C_backend] emits wrappers
    with exactly this convention.

    Toolchain discovery runs once per process: [$LIMPET_CC] if set (an
    explicit override that does {i not} fall back to other compilers
    when it names nothing executable), otherwise the first of [cc],
    [gcc], [clang] on [$PATH].  Compiled artifacts live in a session
    temp directory removed via [at_exit]. *)

type toolchain = {
  cc : string;  (** resolved compiler path *)
  id : string;  (** identity for cache keys: path + version line *)
}

type lib
(** A loaded shared object (plus its source artifact paths). *)

val flags : string list
(** Compilation flags: [-O3 -shared -fPIC -ffp-contract=off
    -fno-fast-math].  FP-contract off and no fast-math are load-bearing:
    they forbid FMA contraction and libm substitution, keeping native
    trajectories bitwise-comparable to the OCaml engines. *)

val flags_id : string
(** The flags as one string (cache-key component). *)

exception
  Compile_error of { cc : string; file : string; status : int; log : string }
(** The toolchain rejected the source ([status] <> 0, [log] = captured
    stderr) or the produced object failed to load ([status] = 0, [log] =
    dlerror).  [file] is the kept [.c] path for post-mortems. *)

val toolchain : unit -> toolchain option
(** The probed (memoized) toolchain, [None] when no C compiler was
    found. *)

val available : unit -> bool
(** [toolchain () <> None]. *)

val with_toolchain : toolchain option -> (unit -> 'a) -> 'a
(** Run [f] with the probe result forced to the given value (tests:
    simulate a missing or broken toolchain); restores on exit. *)

val compile : toolchain -> stem:string -> src:string -> lib * float
(** Write [src] to [<session dir>/<stem>.c], compile it with {!flags}
    into [<stem>.so], [dlopen] it.  Returns the library and the
    compiler wall time in milliseconds.
    @raise Compile_error on toolchain or loader failure. *)

val bind :
  lib -> symbol:string -> params:Ir.Ty.t list -> Rt.v array -> Rt.v array
(** Resolve [symbol] and return a caller marshalling {!Rt.v} argument
    vectors (matching [params], which must be scalar/memref only) to the
    packed ABI.  The returned closure reuses preallocated marshalling
    buffers, so it is not reentrant — obtain one closure per thread,
    as the driver does for every engine.  Kernels return nothing; the
    result is always [[||]].
    @raise Failure if the symbol is missing.
    @raise Invalid_argument on vector parameters or argument mismatch. *)

val source_path : lib -> string
(** The emitted [.c] on disk (kept until process exit for inspection). *)

val so_path : lib -> string
