/* dlopen/dlsym/dlclose bindings plus the one trampoline that calls a
 * JIT-compiled kernel.
 *
 * Kernels are compiled by Exec.Native from C emitted by
 * Codegen.C_backend and expose the packed ABI
 *
 *     void limpet_<name>(const int64_t *ia, const double *fa,
 *                        double *const *ma);
 *
 * The trampoline hands the kernel raw pointers into OCaml heap blocks:
 * floatarray (Double_array_tag) data for the scalar-float argument pack
 * and for every memref.  This is safe because under OCaml 5's
 * stop-the-world minor collector no block moves while this domain is
 * executing non-polling C code, and the kernel never calls back into
 * the runtime or allocates. */

#include <dlfcn.h>
#include <stdint.h>
#include <string.h>

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>

#define MAX_IARGS 64
#define MAX_MARGS 1024

typedef void (*limpet_kernel)(const int64_t *ia, const double *fa,
                              double *const *ma);

CAMLprim value limpet_native_dlopen(value vpath)
{
  CAMLparam1(vpath);
  void *h;
  dlerror();
  h = dlopen(String_val(vpath), RTLD_NOW | RTLD_LOCAL);
  if (h == NULL) {
    const char *err = dlerror();
    caml_failwith(err ? err : "dlopen failed");
  }
  CAMLreturn(caml_copy_nativeint((intnat)h));
}

CAMLprim value limpet_native_dlsym(value vhandle, value vname)
{
  CAMLparam2(vhandle, vname);
  void *fn;
  dlerror();
  fn = dlsym((void *)Nativeint_val(vhandle), String_val(vname));
  if (fn == NULL) {
    const char *err = dlerror();
    caml_failwith(err ? err : "dlsym failed");
  }
  CAMLreturn(caml_copy_nativeint((intnat)fn));
}

CAMLprim value limpet_native_dlclose(value vhandle)
{
  (void)dlclose((void *)Nativeint_val(vhandle));
  return Val_unit;
}

/* call (fn : nativeint) (ia : int array) (fa : floatarray)
 *      (ma : floatarray array) */
CAMLprim value limpet_native_call(value vfn, value vi, value vf, value vm)
{
  int64_t ia[MAX_IARGS];
  double *ma[MAX_MARGS];
  mlsize_t ni = Wosize_val(vi);
  mlsize_t nm = Wosize_val(vm);
  mlsize_t k;

  if (ni > MAX_IARGS) caml_failwith("Native.call: too many int args");
  if (nm > MAX_MARGS) caml_failwith("Native.call: too many memref args");
  for (k = 0; k < ni; k++) ia[k] = (int64_t)Long_val(Field(vi, k));
  for (k = 0; k < nm; k++) ma[k] = (double *)Bp_val(Field(vm, k));

  ((limpet_kernel)Nativeint_val(vfn))(ia, (const double *)Bp_val(vf), ma);
  return Val_unit;
}
