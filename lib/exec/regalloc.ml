(** Linear-scan slot coalescing over a flat instruction stream.

    The batched engine gives every SSA value of a tiled loop body its own
    scratch *row* (a [tile × width] array).  One row per value keeps
    compilation trivial but makes the per-tile register file proportional
    to the body length — ionic kernels have hundreds of SSA values, so the
    working set blows past L1 and the tile loops stall on cache misses.

    This module shrinks the register file with the classic linear-scan
    discipline: every virtual register's live range over the flat stream
    is the interval from its defining instruction to its last use, and a
    physical row freed by an expired range is reused for the next
    definition of the same register class.  Straight-line SSA makes the
    liveness proof trivial — each value has exactly one definition and its
    last textual use really is its last dynamic use (no back edges inside
    the stream; the loop over tiles re-executes the whole stream, and every
    range is closed by then).

    A freed row is only handed out starting with the *next* instruction:
    a definition never aliases an operand dying at the same instruction,
    so the allocation is valid for any instruction semantics (including
    multi-phase ops like the LUT macro-op that interleave reads and
    writes per element).  {!verify} re-derives the ranges and checks the
    disjointness invariant; the batched engine's tests run it on every
    allocation. *)

type vreg = {
  vclass : int;
      (** opaque register class; rows are only reused within a class
          (the batched engine encodes element kind and width here) *)
  vid : int;  (** SSA value id — unique per class *)
}

(** One instruction = the virtual registers it reads and writes. *)
type program = { uses : vreg list array; defs : vreg list array }

type assignment = {
  slot_of : (vreg, int) Hashtbl.t;  (** virtual → physical row *)
  counts : (int * int) list;  (** per class: physical rows allocated *)
  n_virtual : int;  (** distinct virtual registers (for diagnostics) *)
}

let n_instrs (p : program) : int = Array.length p.uses

(* Live range endpoints: def = first defining instruction, expiry = last
   instruction that touches the register (>= def). *)
let ranges (p : program) : (vreg, int * int) Hashtbl.t =
  let n = n_instrs p in
  let r : (vreg, int * int) Hashtbl.t = Hashtbl.create 64 in
  for t = 0 to n - 1 do
    List.iter
      (fun v -> if not (Hashtbl.mem r v) then Hashtbl.replace r v (t, t))
      p.defs.(t);
    List.iter
      (fun v ->
        match Hashtbl.find_opt r v with
        | Some (d, _) -> Hashtbl.replace r v (d, t)
        | None ->
            (* used before any def: treat as live from the start (the
               batched engine never produces this; stay total anyway) *)
            Hashtbl.replace r v (0, t))
      p.uses.(t)
  done;
  r

let allocate (p : program) : assignment =
  let n = n_instrs p in
  let r = ranges p in
  (* registers expiring at instruction t, so their rows free up at t+1 *)
  let expiring : (int, vreg list) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun v (_, e) ->
      Hashtbl.replace expiring e
        (v :: Option.value ~default:[] (Hashtbl.find_opt expiring e)))
    r;
  let free : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  let next : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let slot_of : (vreg, int) Hashtbl.t = Hashtbl.create 64 in
  let take cls =
    match Hashtbl.find_opt free cls with
    | Some (s :: rest) ->
        Hashtbl.replace free cls rest;
        s
    | Some [] | None ->
        let s = Option.value ~default:0 (Hashtbl.find_opt next cls) in
        Hashtbl.replace next cls (s + 1);
        s
  in
  for t = 0 to n - 1 do
    (* allocate definitions first: rows expiring at [t] are not yet free,
       so a def never shares a row with a same-instruction operand *)
    List.iter
      (fun v ->
        if not (Hashtbl.mem slot_of v) then
          Hashtbl.replace slot_of v (take v.vclass))
      p.defs.(t);
    List.iter
      (fun v ->
        match Hashtbl.find_opt slot_of v with
        | None -> () (* use-before-def artifact; nothing to free *)
        | Some s ->
            Hashtbl.replace free v.vclass
              (s :: Option.value ~default:[] (Hashtbl.find_opt free v.vclass)))
      (Option.value ~default:[] (Hashtbl.find_opt expiring t))
  done;
  let counts = Hashtbl.fold (fun cls n acc -> (cls, n) :: acc) next [] in
  { slot_of; counts; n_virtual = Hashtbl.length r }

(** Independent check of an allocation: every register mapped, classes
    consistent with the row pools, and no two live ranges of the same
    class overlapping on one physical row. *)
let verify (p : program) (a : assignment) : (unit, string) result =
  let r = ranges p in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let by_row : (int * int, (vreg * int * int) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let unmapped = ref None in
  Hashtbl.iter
    (fun v (d, e) ->
      match Hashtbl.find_opt a.slot_of v with
      | None -> if !unmapped = None then unmapped := Some v
      | Some s ->
          let key = (v.vclass, s) in
          Hashtbl.replace by_row key
            ((v, d, e) :: Option.value ~default:[] (Hashtbl.find_opt by_row key)))
    r;
  match !unmapped with
  | Some v -> err "virtual register %d.%d has no row" v.vclass v.vid
  | None -> (
      let conflict = ref None in
      Hashtbl.iter
        (fun (_cls, _s) occupants ->
          let sorted =
            List.sort (fun (_, d1, _) (_, d2, _) -> compare d1 d2) occupants
          in
          let rec scan = function
            | (v1, _, e1) :: ((v2, d2, _) :: _ as rest) ->
                if d2 <= e1 && !conflict = None then conflict := Some (v1, v2);
                scan rest
            | _ -> ()
          in
          scan sorted)
        by_row;
      match !conflict with
      | Some (v1, v2) ->
          err "rows overlap: %d.%d and %d.%d share a row while both live"
            v1.vclass v1.vid v2.vclass v2.vid
      | None -> Ok ())
