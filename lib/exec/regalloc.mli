(** Linear-scan slot coalescing over a flat instruction stream (used by
    {!Batched} to shrink its per-tile register file).

    Virtual registers are SSA values tagged with an opaque class; rows are
    only reused within a class.  Live ranges are computed over the stream
    (def → last use) and a row freed by an expired range serves the next
    definition of the same class.  A row becomes reusable only at the
    instruction *after* its register's last use, so a definition never
    aliases a same-instruction operand — sound for any instruction
    semantics, including macro-ops that interleave reads and writes. *)

type vreg = {
  vclass : int;  (** opaque register class; rows never cross classes *)
  vid : int;  (** SSA value id — unique within a class *)
}

type program = { uses : vreg list array; defs : vreg list array }
(** One entry per instruction, in execution order. *)

type assignment = {
  slot_of : (vreg, int) Hashtbl.t;  (** virtual → physical row *)
  counts : (int * int) list;  (** per class: physical rows allocated *)
  n_virtual : int;  (** distinct virtual registers seen *)
}

val allocate : program -> assignment
(** Linear-scan allocation; O(instrs + registers). *)

val verify : program -> assignment -> (unit, string) result
(** Independent soundness check: every register mapped, and no two
    same-class registers share a row while both live.  [Error] carries a
    human-readable description of the first violation. *)
