(** Runtime values exchanged between the host, the execution engines and
    extern (runtime library) functions.

    Memrefs are flat [floatarray] buffers (unboxed doubles), matching the
    [memref<?xf64>] views the generated kernels operate on. *)

type v =
  | F of float
  | I of int
  | B of bool
  | VF of floatarray  (** vector<wxf64> *)
  | VI of int array  (** vector<wxi64> *)
  | VB of bool array  (** vector<wxi1> *)
  | M of floatarray  (** memref<?xf64> *)

val type_name : v -> string

val to_f : v -> float
val to_i : v -> int
val to_b : v -> bool
val to_vf : v -> floatarray
val to_vi : v -> int array
val to_m : v -> floatarray

(** Extern function registry: runtime-library entry points callable from IR
    via [func.call] (the analogue of openCARP's [LUT_interpRow] and
    friends). *)
type registry = (string, v array -> v array) Hashtbl.t

val create_registry : unit -> registry
val register : registry -> string -> (v array -> v array) -> unit
val lookup : registry -> string -> v array -> v array

val buffer : int -> floatarray
(** A fresh zero-initialised buffer. *)

val buffer_of_list : float list -> floatarray
val buffer_to_list : floatarray -> float list
