(** IR builder.

    Creates SSA values and ops with eager operand type checking, so that a
    code-generation bug surfaces at the op construction site rather than in
    the verifier or the execution engine.  Regions are built through
    higher-order [for_] / [if_] combinators that take body-emitting
    callbacks and insert the terminating [scf.yield] automatically. *)

exception Type_error of string

let terr fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

type ctx = { mutable next_value : int; mutable next_op : int }

let create_ctx () : ctx = { next_value = 0; next_op = 0 }

let fresh_value (ctx : ctx) (ty : Ty.t) : Value.t =
  let id = ctx.next_value in
  ctx.next_value <- id + 1;
  { Value.id; ty }

let fresh_op_id (ctx : ctx) : int =
  let id = ctx.next_op in
  ctx.next_op <- id + 1;
  id

(* The builder appends ops to the innermost open region; ops are collected
   in reverse and put in order when the region is closed. *)
type frame = { region : Op.region; mutable acc : Op.op list }
type t = { ctx : ctx; mutable stack : frame list }

let create (ctx : ctx) : t = { ctx; stack = [] }

let open_region (b : t) (args : Ty.t list) : Value.t list =
  let vargs = List.map (fresh_value b.ctx) args in
  let region = { Op.r_args = vargs; r_ops = [] } in
  b.stack <- { region; acc = [] } :: b.stack;
  vargs

let close_region (b : t) : Op.region =
  match b.stack with
  | [] -> invalid_arg "Builder.close_region: no open region"
  | f :: rest ->
      f.region.Op.r_ops <- List.rev f.acc;
      b.stack <- rest;
      f.region

let emit (b : t) (kind : Op.kind) ?(regions = [||]) (operands : Value.t list)
    (result_tys : Ty.t list) : Value.t list =
  match b.stack with
  | [] -> invalid_arg "Builder.emit: no open region"
  | f :: _ ->
      let results = List.map (fresh_value b.ctx) result_tys in
      let id = b.ctx.next_op in
      b.ctx.next_op <- id + 1;
      let op =
        {
          Op.o_id = id;
          kind;
          operands = Array.of_list operands;
          results = Array.of_list results;
          regions;
        }
      in
      f.acc <- op :: f.acc;
      results

let emit1 b kind ?regions operands result_ty =
  match emit b kind ?regions operands [ result_ty ] with
  | [ v ] -> v
  | _ -> assert false

let emit0 b kind ?regions operands =
  ignore (emit b kind ?regions operands [])

(* ------------------------------------------------------------------ *)
(* arith                                                               *)
(* ------------------------------------------------------------------ *)

let constf b f = emit1 b (Op.ConstF f) [] Ty.F64
let consti b i = emit1 b (Op.ConstI i) [] Ty.I64
let constb b v = emit1 b (Op.ConstB v) [] Ty.I1

let check_same what (x : Value.t) (y : Value.t) =
  if not (Ty.equal x.ty y.ty) then
    terr "%s: operand types differ (%a vs %a)" what Ty.pp x.ty Ty.pp y.ty

let binf b (k : Op.fbin) (x : Value.t) (y : Value.t) : Value.t =
  check_same (Op.fbin_name k) x y;
  if not (Ty.is_float_like x.ty) then
    terr "%s: expected float-like operands, got %a" (Op.fbin_name k) Ty.pp x.ty;
  emit1 b (Op.BinF k) [ x; y ] x.ty

let addf b = binf b Op.FAdd
let subf b = binf b Op.FSub
let mulf b = binf b Op.FMul
let divf b = binf b Op.FDiv
let minf b = binf b Op.FMin
let maxf b = binf b Op.FMax

let negf b (x : Value.t) : Value.t =
  if not (Ty.is_float_like x.ty) then terr "negf: expected float-like operand";
  emit1 b Op.NegF [ x ] x.ty

let bini b (k : Op.ibin) (x : Value.t) (y : Value.t) : Value.t =
  check_same (Op.ibin_name k) x y;
  if not (Ty.is_int_like x.ty) then terr "%s: expected i64" (Op.ibin_name k);
  emit1 b (Op.BinI k) [ x; y ] x.ty

let addi b = bini b Op.IAdd
let subi b = bini b Op.ISub
let muli b = bini b Op.IMul
let divi b = bini b Op.IDiv
let remi b = bini b Op.IRem

let binb b (k : Op.bbin) (x : Value.t) (y : Value.t) : Value.t =
  check_same (Op.bbin_name k) x y;
  if not (Ty.is_bool_like x.ty) then terr "%s: expected i1" (Op.bbin_name k);
  emit1 b (Op.BinB k) [ x; y ] x.ty

let andb b = binb b Op.BAnd
let orb b = binb b Op.BOr

let notb b (x : Value.t) : Value.t =
  if not (Ty.is_bool_like x.ty) then terr "not: expected i1";
  emit1 b Op.NotB [ x ] x.ty

let cmpf b (c : Op.cmp) (x : Value.t) (y : Value.t) : Value.t =
  check_same "cmpf" x y;
  if not (Ty.is_float_like x.ty) then terr "cmpf: expected float-like operands";
  emit1 b (Op.CmpF c) [ x; y ] (Ty.like ~like:x.ty Ty.I1)

let cmpi b (c : Op.cmp) (x : Value.t) (y : Value.t) : Value.t =
  check_same "cmpi" x y;
  if not (Ty.is_int_like x.ty) then terr "cmpi: expected i64 operands";
  emit1 b (Op.CmpI c) [ x; y ] (Ty.like ~like:x.ty Ty.I1)

let select b (c : Value.t) (x : Value.t) (y : Value.t) : Value.t =
  check_same "select" x y;
  if not (Ty.is_bool_like c.ty) then terr "select: condition must be i1-like";
  if Ty.width c.ty <> Ty.width x.ty then
    terr "select: condition width %d does not match value width %d"
      (Ty.width c.ty) (Ty.width x.ty);
  emit1 b Op.Select [ c; x; y ] x.ty

let sitofp b (x : Value.t) : Value.t =
  if not (Ty.is_int_like x.ty) then terr "sitofp: expected i64-like";
  emit1 b Op.SIToFP [ x ] (Ty.like ~like:x.ty Ty.F64)

let fptosi b (x : Value.t) : Value.t =
  if not (Ty.is_float_like x.ty) then terr "fptosi: expected f64-like";
  emit1 b Op.FPToSI [ x ] (Ty.like ~like:x.ty Ty.I64)

(* ------------------------------------------------------------------ *)
(* math                                                                *)
(* ------------------------------------------------------------------ *)

let math b (name : string) (args : Value.t list) : Value.t =
  (match Easyml.Builtins.find name with
  | None -> terr "math.%s: unknown builtin" name
  | Some bi ->
      if bi.arity <> List.length args then
        terr "math.%s: expected %d args, got %d" name bi.arity
          (List.length args));
  let ty =
    match args with
    | [] -> terr "math.%s: no operands" name
    | a :: rest ->
        List.iter (check_same ("math." ^ name) a) rest;
        if not (Ty.is_float_like a.ty) then
          terr "math.%s: expected float-like operands" name;
        a.Value.ty
  in
  emit1 b (Op.Math name) args ty

(* ------------------------------------------------------------------ *)
(* vector                                                              *)
(* ------------------------------------------------------------------ *)

let broadcast b ~(width : int) (x : Value.t) : Value.t =
  if not (Ty.is_scalar x.ty) then terr "broadcast: operand must be scalar";
  if width = 1 then x else emit1 b Op.Broadcast [ x ] (Ty.vec width x.ty)

let vec_extract b (v : Value.t) (lane : int) : Value.t =
  match v.ty with
  | Ty.Vec (w, e) when lane >= 0 && lane < w ->
      emit1 b (Op.VecExtract lane) [ v ] e
  | Ty.Vec (w, _) -> terr "vector.extract: lane %d out of range 0..%d" lane (w - 1)
  | _ -> terr "vector.extract: operand must be a vector"

let check_memref what (m : Value.t) =
  if not (Ty.equal m.ty Ty.Memref) then terr "%s: expected memref operand" what

let check_index what (i : Value.t) =
  if not (Ty.equal i.ty Ty.I64) then terr "%s: expected i64 index" what

let vec_load b ~(width : int) ~(mem : Value.t) ~(idx : Value.t) : Value.t =
  check_memref "vector.load" mem;
  check_index "vector.load" idx;
  emit1 b Op.VecLoad [ mem; idx ] (Ty.vec width Ty.F64)

let vec_store b ~(vec : Value.t) ~(mem : Value.t) ~(idx : Value.t) : unit =
  check_memref "vector.store" mem;
  check_index "vector.store" idx;
  (match vec.ty with
  | Ty.Vec (_, Ty.F64) -> ()
  | _ -> terr "vector.store: expected vector<wxf64> value");
  emit0 b Op.VecStore [ vec; mem; idx ]

let gather b ~(mem : Value.t) ~(idxs : Value.t) : Value.t =
  check_memref "vector.gather" mem;
  match idxs.ty with
  | Ty.Vec (w, Ty.I64) -> emit1 b Op.Gather [ mem; idxs ] (Ty.vec w Ty.F64)
  | _ -> terr "vector.gather: expected vector<wxi64> indices"

let scatter b ~(vec : Value.t) ~(mem : Value.t) ~(idxs : Value.t) : unit =
  check_memref "vector.scatter" mem;
  match (vec.ty, idxs.ty) with
  | Ty.Vec (w1, Ty.F64), Ty.Vec (w2, Ty.I64) when w1 = w2 ->
      emit0 b Op.Scatter [ vec; mem; idxs ]
  | _ -> terr "vector.scatter: expected matching vector<wxf64>/vector<wxi64>"

let iota b ~(width : int) : Value.t =
  if width < 2 then terr "vector.step: width must be >= 2";
  emit1 b (Op.Iota width) [] (Ty.vec width Ty.I64)

(* ------------------------------------------------------------------ *)
(* memref                                                              *)
(* ------------------------------------------------------------------ *)

let alloc b ~(size : Value.t) : Value.t =
  check_index "memref.alloc" size;
  emit1 b Op.Alloc [ size ] Ty.Memref

let load b ~(mem : Value.t) ~(idx : Value.t) : Value.t =
  check_memref "memref.load" mem;
  check_index "memref.load" idx;
  emit1 b Op.MemLoad [ mem; idx ] Ty.F64

let store b (x : Value.t) ~(mem : Value.t) ~(idx : Value.t) : unit =
  check_memref "memref.store" mem;
  check_index "memref.store" idx;
  if not (Ty.equal x.ty Ty.F64) then terr "memref.store: expected f64 value";
  emit0 b Op.MemStore [ x; mem; idx ]

(* ------------------------------------------------------------------ *)
(* scf                                                                 *)
(* ------------------------------------------------------------------ *)

let for_ b ?(parallel = false) ~(lb : Value.t) ~(ub : Value.t)
    ~(step : Value.t) ~(inits : Value.t list)
    (body : iv:Value.t -> iters:Value.t list -> Value.t list) : Value.t list =
  check_index "scf.for lb" lb;
  check_index "scf.for ub" ub;
  check_index "scf.for step" step;
  let iter_tys = List.map (fun (v : Value.t) -> v.ty) inits in
  let args = open_region b (Ty.I64 :: iter_tys) in
  let iv, iters =
    match args with iv :: rest -> (iv, rest) | [] -> assert false
  in
  let yielded = body ~iv ~iters in
  let ytys = List.map (fun (v : Value.t) -> v.ty) yielded in
  if ytys <> iter_tys then terr "scf.for: yield types do not match iter types";
  emit0 b Op.Yield yielded;
  let region = close_region b in
  emit b (Op.For { parallel }) ~regions:[| region |]
    (lb :: ub :: step :: inits)
    iter_tys

let if_ b ~(cond : Value.t) ~(then_ : unit -> Value.t list)
    ~(else_ : unit -> Value.t list) : Value.t list =
  if not (Ty.equal cond.ty Ty.I1) then terr "scf.if: condition must be i1";
  let _ = open_region b [] in
  let tvals = then_ () in
  let ttys = List.map (fun (v : Value.t) -> v.ty) tvals in
  emit0 b Op.Yield tvals;
  let then_region = close_region b in
  let _ = open_region b [] in
  let evals = else_ () in
  let etys = List.map (fun (v : Value.t) -> v.ty) evals in
  emit0 b Op.Yield evals;
  let else_region = close_region b in
  if ttys <> etys then terr "scf.if: branch result types differ";
  emit b Op.If ~regions:[| then_region; else_region |] [ cond ] ttys

(* ------------------------------------------------------------------ *)
(* func                                                                *)
(* ------------------------------------------------------------------ *)

let call b (m : Func.modl) (name : string) (args : Value.t list) : Value.t list
    =
  match Func.callee_sig m name with
  | None -> terr "func.call: unknown callee @%s" name
  | Some (ptys, rtys) ->
      let atys = List.map (fun (v : Value.t) -> v.ty) args in
      if atys <> ptys then
        terr "func.call @%s: argument types do not match signature" name;
      emit b (Op.Call name) args rtys

let ret b (vals : Value.t list) : unit = emit0 b Op.Return vals

(** Build a function: opens the body region with [params] argument types,
    runs [body] with the builder and the parameter values, and closes the
    region.  [body] must end with {!ret}. *)
let func (ctx : ctx) ~(name : string) ~(params : Ty.t list)
    ~(results : Ty.t list) (body : t -> Value.t list -> unit) : Func.func =
  let b = create ctx in
  let args = open_region b params in
  body b args;
  let region = close_region b in
  (match List.rev region.Op.r_ops with
  | { Op.kind = Op.Return; _ } :: _ -> ()
  | _ -> terr "func %s: body must end in func.return" name);
  { Func.f_name = name; f_params = args; f_results = results; f_body = region }
