(** IR builder.

    Creates SSA values and ops with eager operand type checking, so that a
    code-generation bug surfaces at the op construction site rather than in
    the verifier or the execution engine.  Regions are built through
    higher-order {!for_} / {!if_} combinators that take body-emitting
    callbacks and insert the terminating [scf.yield] automatically. *)

exception Type_error of string

(** Shared id counters: one [ctx] per module keeps value and op ids unique
    across all of its functions. *)
type ctx

val create_ctx : unit -> ctx
val fresh_value : ctx -> Ty.t -> Value.t

val fresh_op_id : ctx -> int
(** Allocate a module-unique op id (for clients like the parser that
    construct op records directly). *)

(** A builder holds a stack of open regions; ops are appended to the
    innermost one. *)
type t

val create : ctx -> t

val open_region : t -> Ty.t list -> Value.t list
(** Open a nested region whose block takes arguments of the given types;
    returns the argument values. *)

val close_region : t -> Op.region
(** Close the innermost open region and return it. *)

val emit :
  t -> Op.kind -> ?regions:Op.region array -> Value.t list -> Ty.t list ->
  Value.t list
(** Low-level: append an op with fresh result values of the given types. *)

val emit1 : t -> Op.kind -> ?regions:Op.region array -> Value.t list -> Ty.t -> Value.t
val emit0 : t -> Op.kind -> ?regions:Op.region array -> Value.t list -> unit

(* arith *)
val constf : t -> float -> Value.t
val consti : t -> int -> Value.t
val constb : t -> bool -> Value.t
val binf : t -> Op.fbin -> Value.t -> Value.t -> Value.t
val addf : t -> Value.t -> Value.t -> Value.t
val subf : t -> Value.t -> Value.t -> Value.t
val mulf : t -> Value.t -> Value.t -> Value.t
val divf : t -> Value.t -> Value.t -> Value.t
val minf : t -> Value.t -> Value.t -> Value.t
val maxf : t -> Value.t -> Value.t -> Value.t
val negf : t -> Value.t -> Value.t
val bini : t -> Op.ibin -> Value.t -> Value.t -> Value.t
val addi : t -> Value.t -> Value.t -> Value.t
val subi : t -> Value.t -> Value.t -> Value.t
val muli : t -> Value.t -> Value.t -> Value.t
val divi : t -> Value.t -> Value.t -> Value.t
val remi : t -> Value.t -> Value.t -> Value.t
val binb : t -> Op.bbin -> Value.t -> Value.t -> Value.t
val andb : t -> Value.t -> Value.t -> Value.t
val orb : t -> Value.t -> Value.t -> Value.t
val notb : t -> Value.t -> Value.t
val cmpf : t -> Op.cmp -> Value.t -> Value.t -> Value.t
val cmpi : t -> Op.cmp -> Value.t -> Value.t -> Value.t
val select : t -> Value.t -> Value.t -> Value.t -> Value.t
val sitofp : t -> Value.t -> Value.t
val fptosi : t -> Value.t -> Value.t

(* math *)
val math : t -> string -> Value.t list -> Value.t
(** [math b name args] emits a math-dialect op; [name] must be a known
    {!Easyml.Builtins} entry with matching arity. *)

(* vector *)
val broadcast : t -> width:int -> Value.t -> Value.t
(** Identity at [width = 1]. *)

val vec_extract : t -> Value.t -> int -> Value.t
val vec_load : t -> width:int -> mem:Value.t -> idx:Value.t -> Value.t
val vec_store : t -> vec:Value.t -> mem:Value.t -> idx:Value.t -> unit
val gather : t -> mem:Value.t -> idxs:Value.t -> Value.t
val scatter : t -> vec:Value.t -> mem:Value.t -> idxs:Value.t -> unit
val iota : t -> width:int -> Value.t
(** [iota] requires [width >= 2]. *)

(* memref *)
val alloc : t -> size:Value.t -> Value.t
val load : t -> mem:Value.t -> idx:Value.t -> Value.t
val store : t -> Value.t -> mem:Value.t -> idx:Value.t -> unit

(* scf *)
val for_ :
  t -> ?parallel:bool -> lb:Value.t -> ub:Value.t -> step:Value.t ->
  inits:Value.t list ->
  (iv:Value.t -> iters:Value.t list -> Value.t list) ->
  Value.t list
(** Structured counted loop; the body callback receives the induction
    variable and loop-carried values and returns the yielded values, which
    must match [inits] in type. *)

val if_ :
  t -> cond:Value.t -> then_:(unit -> Value.t list) ->
  else_:(unit -> Value.t list) -> Value.t list

(* func *)
val call : t -> Func.modl -> string -> Value.t list -> Value.t list
val ret : t -> Value.t list -> unit

val func :
  ctx -> name:string -> params:Ty.t list -> results:Ty.t list ->
  (t -> Value.t list -> unit) -> Func.func
(** Build a function: opens the body region with [params] argument types,
    runs the body callback, and closes the region.  The body must end with
    {!ret}. *)
