(** Functions and modules.

    A module holds the functions produced by code generation (the per-model
    [compute] kernel, the lookup-table initializers) plus the signatures of
    the runtime (extern) functions they call — the analogue of openCARP's
    [LUT_interpRow] and the SVML-style vector math entry points. *)

type extern_sig = {
  e_name : string;
  e_params : Ty.t list;
  e_results : Ty.t list;
}

type func = {
  f_name : string;
  f_params : Value.t list;
  f_results : Ty.t list;
  f_body : Op.region;
}

type modl = {
  m_name : string;
  mutable m_funcs : func list;
  mutable m_externs : extern_sig list;
}

let create_module (name : string) : modl =
  { m_name = name; m_funcs = []; m_externs = [] }

let add_func (m : modl) (f : func) : unit = m.m_funcs <- m.m_funcs @ [ f ]

let declare_extern (m : modl) (e : extern_sig) : unit =
  if not (List.exists (fun x -> x.e_name = e.e_name) m.m_externs) then
    m.m_externs <- m.m_externs @ [ e ]

let find_func (m : modl) (name : string) : func option =
  List.find_opt (fun f -> f.f_name = name) m.m_funcs

let find_extern (m : modl) (name : string) : extern_sig option =
  List.find_opt (fun e -> e.e_name = name) m.m_externs

(** Callee signature as seen by the verifier: a local function or an extern. *)
let callee_sig (m : modl) (name : string) : (Ty.t list * Ty.t list) option =
  match find_func m name with
  | Some f -> Some (List.map (fun v -> v.Value.ty) f.f_params, f.f_results)
  | None -> (
      match find_extern m name with
      | Some e -> Some (e.e_params, e.e_results)
      | None -> None)

let op_count (f : func) : int = Op.count_ops f.f_body

(* -- deep copy ------------------------------------------------------- *)

(* Fresh op records with fresh operand/result arrays (passes mutate
   region op lists and operand arrays in place, so snapshots for
   validation — and specialization of shared cache entries — must not
   alias the source).  Value records are immutable and stay shared. *)
let rec copy_region (r : Op.region) : Op.region =
  { Op.r_args = r.Op.r_args; r_ops = List.map copy_op r.Op.r_ops }

and copy_op (o : Op.op) : Op.op =
  {
    o with
    Op.operands = Array.copy o.Op.operands;
    results = Array.copy o.Op.results;
    regions = Array.map copy_region o.Op.regions;
  }

let copy_func (f : func) : func = { f with f_body = copy_region f.f_body }

let copy_module (m : modl) : modl =
  {
    m_name = m.m_name;
    m_funcs = List.map copy_func m.m_funcs;
    m_externs = m.m_externs;
  }
