(** Generic hash-consing: maximal sharing with O(1) equality.

    The translation validator ({!Analysis.Transval}) maps IR functions
    to symbolic term DAGs; hash-consing every node gives it structural
    equality by integer tag comparison and keeps the DAG maximally
    shared — the properties the per-pass equivalence checker needs to
    stay linear in practice.  The functor lives in [lib/ir] (rather than
    with the validator) so any future IR client — printers memoizing
    subtrees, pattern indexes — can reuse it.

    Clients supply hashing and equality over nodes whose {e children}
    are already hash-consed (so child comparison inside [equal] should
    be by [tag]).  The table keeps strong references; a table's lifetime
    should match the analysis that owns it. *)

module type HashedType = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module type S = sig
  type node
  type t = private { node : node; tag : int; hkey : int }

  type table

  val create : int -> table
  val hashcons : table -> node -> t
  val length : table -> int
end

module Make (H : HashedType) : S with type node = H.t = struct
  type node = H.t
  type t = { node : node; tag : int; hkey : int }

  module Tbl = Hashtbl.Make (struct
    type t = node

    let equal = H.equal
    let hash = H.hash
  end)

  type table = { tbl : t Tbl.t; mutable next : int }

  let create n = { tbl = Tbl.create (max 16 n); next = 0 }

  let hashcons (t : table) (n : node) : t =
    match Tbl.find_opt t.tbl n with
    | Some x -> x
    | None ->
        let x = { node = n; tag = t.next; hkey = H.hash n } in
        t.next <- t.next + 1;
        Tbl.replace t.tbl n x;
        x

  let length (t : table) = Tbl.length t.tbl
end
