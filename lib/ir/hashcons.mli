(** Generic hash-consing: maximal sharing with O(1) equality.

    Used by {!Analysis.Transval} to intern symbolic term DAGs: every
    structurally distinct node is allocated once and identified by an
    integer [tag], so term equality is tag comparison and shared
    subterms are represented once.

    The [equal]/[hash] a client supplies see nodes whose children are
    already hash-consed — compare children by their [tag].  Tables hold
    strong references; scope a table to the analysis that owns it. *)

module type HashedType = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module type S = sig
  type node

  type t = private { node : node; tag : int; hkey : int }
  (** [tag] is unique per table and dense from 0; [hkey] memoizes the
      client hash. *)

  type table

  val create : int -> table
  (** [create n] sizes the intern table for about [n] nodes. *)

  val hashcons : table -> node -> t
  (** Intern a node: the same (up to [H.equal]) node always returns the
      physically same [t], so [t1 == t2] iff [t1.tag = t2.tag]. *)

  val length : table -> int
  (** Number of distinct nodes interned so far. *)
end

module Make (H : HashedType) : S with type node = H.t
