(** IR operations.

    Ops are grouped by the MLIR dialect they correspond to (arith, math,
    vector, memref, scf, func).  As in MLIR, structured control flow carries
    nested regions; every region here is a single block with arguments
    ([scf.for]'s induction variable and loop-carried values).  The paper's
    point — and ours — is that no *new* dialect is needed: ionic models
    lower onto exactly this op set. *)

type fbin = FAdd | FSub | FMul | FDiv | FMin | FMax | FRem
type ibin = IAdd | ISub | IMul | IDiv | IRem
type bbin = BAnd | BOr | BXor
type cmp = Lt | Le | Gt | Ge | Eq | Ne

type kind =
  (* arith dialect *)
  | ConstF of float  (** () -> f64 *)
  | ConstI of int  (** () -> i64 *)
  | ConstB of bool  (** () -> i1 *)
  | BinF of fbin  (** (T, T) -> T, T float-like *)
  | NegF  (** (T) -> T *)
  | BinI of ibin  (** (i64, i64) -> i64 *)
  | BinB of bbin  (** (B, B) -> B, B bool-like *)
  | NotB  (** (B) -> B *)
  | CmpF of cmp  (** (T, T) -> bool-like of same width *)
  | CmpI of cmp  (** (i64, i64) -> i1 *)
  | Select  (** (B, T, T) -> T with matching widths *)
  | SIToFP  (** (int-like) -> float-like, same width *)
  | FPToSI  (** (float-like) -> int-like, same width (truncates) *)
  (* math dialect: name refers to the Easyml builtin registry *)
  | Math of string  (** (T, ...) -> T, all float-like of equal shape *)
  (* vector dialect *)
  | Broadcast  (** (scalar) -> vector of it; width from result type *)
  | VecExtract of int  (** (vector) -> scalar, constant lane *)
  | VecLoad  (** (memref, i64) -> vector<wxf64>, contiguous *)
  | VecStore  (** (vector<wxf64>, memref, i64) -> (), contiguous *)
  | Gather  (** (memref, vector<wxi64>) -> vector<wxf64> *)
  | Scatter  (** (vector<wxf64>, memref, vector<wxi64>) -> () *)
  | Iota of int  (** () -> vector<wxi64> = [0, 1, ..., w-1] *)
  (* memref dialect *)
  | Alloc  (** (i64 size) -> memref *)
  | MemLoad  (** (memref, i64) -> f64 *)
  | MemStore  (** (f64, memref, i64) -> () *)
  (* scf dialect *)
  | For of { parallel : bool }
      (** operands (lb, ub, step, init...); one region whose block args are
          (iv : i64, iter... ); results are the final iter values.  The
          [parallel] flag plays the role of the omp dialect's parallel-for
          wrapper in the paper's generated code. *)
  | If  (** operand (cond : i1); regions [then; else]; results from yields *)
  | Yield  (** terminator of scf regions; operands feed results/iters *)
  (* func dialect *)
  | Call of string  (** results/operands per the callee's signature *)
  | Return

(* A region is a single block: argument values plus an op list.  ops are
   stored in execution order. *)
type region = { r_args : Value.t list; mutable r_ops : op list }

and op = {
  o_id : int;
  kind : kind;
  operands : Value.t array;
  results : Value.t array;
  regions : region array;
}

let fbin_name = function
  | FAdd -> "arith.addf"
  | FSub -> "arith.subf"
  | FMul -> "arith.mulf"
  | FDiv -> "arith.divf"
  | FMin -> "arith.minf"
  | FMax -> "arith.maxf"
  | FRem -> "arith.remf"

let ibin_name = function
  | IAdd -> "arith.addi"
  | ISub -> "arith.subi"
  | IMul -> "arith.muli"
  | IDiv -> "arith.divsi"
  | IRem -> "arith.remsi"

let bbin_name = function
  | BAnd -> "arith.andi"
  | BOr -> "arith.ori"
  | BXor -> "arith.xori"

let cmp_name = function
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Eq -> "eq"
  | Ne -> "ne"

let kind_name = function
  | ConstF _ | ConstI _ | ConstB _ -> "arith.constant"
  | BinF b -> fbin_name b
  | NegF -> "arith.negf"
  | BinI b -> ibin_name b
  | BinB b -> bbin_name b
  | NotB -> "arith.not"
  | CmpF _ -> "arith.cmpf"
  | CmpI _ -> "arith.cmpi"
  | Select -> "arith.select"
  | SIToFP -> "arith.sitofp"
  | FPToSI -> "arith.fptosi"
  | Math m -> "math." ^ m
  | Broadcast -> "vector.broadcast"
  | VecExtract _ -> "vector.extract"
  | VecLoad -> "vector.load"
  | VecStore -> "vector.store"
  | Gather -> "vector.gather"
  | Scatter -> "vector.scatter"
  | Iota _ -> "vector.step"
  | Alloc -> "memref.alloc"
  | MemLoad -> "memref.load"
  | MemStore -> "memref.store"
  | For { parallel } -> if parallel then "scf.parallel" else "scf.for"
  | If -> "scf.if"
  | Yield -> "scf.yield"
  | Call f -> "func.call @" ^ f
  | Return -> "func.return"

(* Short mnemonics for symbolic-term printers built on top of the IR
   (the translation validator renders terms like [fadd(t1, t2)] rather
   than full dialect names). *)
let fbin_short = function
  | FAdd -> "fadd"
  | FSub -> "fsub"
  | FMul -> "fmul"
  | FDiv -> "fdiv"
  | FMin -> "fmin"
  | FMax -> "fmax"
  | FRem -> "frem"

let ibin_short = function
  | IAdd -> "iadd"
  | ISub -> "isub"
  | IMul -> "imul"
  | IDiv -> "idiv"
  | IRem -> "irem"

let bbin_short = function BAnd -> "and" | BOr -> "or" | BXor -> "xor"

(** Is this op free of side effects (so CSE/DCE may touch it)? *)
let pure (o : op) : bool =
  match o.kind with
  | MemStore | VecStore | Scatter | Call _ | Return | Yield | Alloc -> false
  | For _ | If ->
      (* structured ops are pure iff their bodies are; handled by passes *)
      false
  | ConstF _ | ConstI _ | ConstB _ | BinF _ | NegF | BinI _ | BinB _ | NotB
  | CmpF _ | CmpI _ | Select | SIToFP | FPToSI | Math _ | Broadcast
  | VecExtract _ | Iota _ ->
      true
  | VecLoad | MemLoad | Gather ->
      (* loads are pure only in the absence of interleaved stores; the
         passes that use [pure] handle memory separately *)
      false

(** Iterate over every op in a region, depth first, outer-to-inner. *)
let rec iter_region (f : op -> unit) (r : region) : unit =
  List.iter
    (fun o ->
      f o;
      Array.iter (iter_region f) o.regions)
    r.r_ops

(** Fold over every op in a region, depth first. *)
let fold_region (f : 'a -> op -> 'a) (init : 'a) (r : region) : 'a =
  let acc = ref init in
  iter_region (fun o -> acc := f !acc o) r;
  !acc

(** Number of ops in a region, including nested ones. *)
let count_ops (r : region) : int = fold_region (fun n _ -> n + 1) 0 r
