(** IR operations.

    Ops are grouped by the MLIR dialect they correspond to (arith, math,
    vector, memref, scf, func).  As in MLIR, structured control flow carries
    nested regions; every region here is a single block with arguments
    ([scf.for]'s induction variable and loop-carried values). *)

type fbin = FAdd | FSub | FMul | FDiv | FMin | FMax | FRem
type ibin = IAdd | ISub | IMul | IDiv | IRem
type bbin = BAnd | BOr | BXor
type cmp = Lt | Le | Gt | Ge | Eq | Ne

type kind =
  (* arith dialect *)
  | ConstF of float  (** () -> f64 *)
  | ConstI of int  (** () -> i64 *)
  | ConstB of bool  (** () -> i1 *)
  | BinF of fbin  (** (T, T) -> T, T float-like *)
  | NegF  (** (T) -> T *)
  | BinI of ibin  (** (i64, i64) -> i64 *)
  | BinB of bbin  (** (B, B) -> B, B bool-like *)
  | NotB  (** (B) -> B *)
  | CmpF of cmp  (** (T, T) -> bool-like of same width *)
  | CmpI of cmp  (** (i64, i64) -> i1 *)
  | Select  (** (B, T, T) -> T with matching widths *)
  | SIToFP  (** (int-like) -> float-like, same width *)
  | FPToSI  (** (float-like) -> int-like, same width (truncates) *)
  (* math dialect: name refers to the Easyml builtin registry *)
  | Math of string  (** (T, ...) -> T, all float-like of equal shape *)
  (* vector dialect *)
  | Broadcast  (** (scalar) -> vector of it; width from result type *)
  | VecExtract of int  (** (vector) -> scalar, constant lane *)
  | VecLoad  (** (memref, i64) -> vector<wxf64>, contiguous *)
  | VecStore  (** (vector<wxf64>, memref, i64) -> (), contiguous *)
  | Gather  (** (memref, vector<wxi64>) -> vector<wxf64> *)
  | Scatter  (** (vector<wxf64>, memref, vector<wxi64>) -> () *)
  | Iota of int  (** () -> vector<wxi64> = [0, 1, ..., w-1] *)
  (* memref dialect *)
  | Alloc  (** (i64 size) -> memref *)
  | MemLoad  (** (memref, i64) -> f64 *)
  | MemStore  (** (f64, memref, i64) -> () *)
  (* scf dialect *)
  | For of { parallel : bool }
      (** operands (lb, ub, step, init...); one region whose block args are
          (iv : i64, iter...); results are the final iter values *)
  | If  (** operand (cond : i1); regions [then; else]; results from yields *)
  | Yield  (** terminator of scf regions; operands feed results/iters *)
  (* func dialect *)
  | Call of string  (** results/operands per the callee's signature *)
  | Return

(** A region is a single block: argument values plus an op list, stored in
    execution order. *)
type region = { r_args : Value.t list; mutable r_ops : op list }

and op = {
  o_id : int;  (** unique within a builder context; analysis-result key *)
  kind : kind;
  operands : Value.t array;
  results : Value.t array;
  regions : region array;
}

val fbin_name : fbin -> string
val ibin_name : ibin -> string
val bbin_name : bbin -> string
val cmp_name : cmp -> string
val kind_name : kind -> string

val fbin_short : fbin -> string
(** Short mnemonic ([fadd], [fmul], …) for symbolic-term printers
    ({!Analysis.Transval}); {!fbin_name} stays the dialect name. *)

val ibin_short : ibin -> string
val bbin_short : bbin -> string

val pure : op -> bool
(** Is this op free of side effects (so CSE/DCE may touch it)?  Loads are
    not [pure]: they are only movable in the absence of interleaved stores,
    which callers must establish separately (see {!Analysis.Footprint}). *)

val iter_region : (op -> unit) -> region -> unit
(** Iterate over every op in a region, depth first, outer-to-inner. *)

val fold_region : ('a -> op -> 'a) -> 'a -> region -> 'a
(** Fold over every op in a region, depth first. *)

val count_ops : region -> int
(** Number of ops in a region, including nested ones. *)
