(** Parser for the textual IR emitted by {!Printer}.

    Enables round-tripping generated kernels through their textual form —
    useful for storing IR in files, for the CLI, and as a strong test of
    the printer (parse ∘ print must reproduce a structurally identical,
    re-verifiable module).

    The grammar is exactly the printer's output language; this is not a
    general MLIR parser. *)

exception Error of { line : int; msg : string }

let err line fmt = Fmt.kstr (fun msg -> raise (Error { line; msg })) fmt

(* ------------------------------------------------------------------ *)
(* Tokenizer: one line at a time, split into small lexemes              *)
(* ------------------------------------------------------------------ *)

type tok =
  | TPercent of int  (** %N *)
  | TAt of string  (** @name *)
  | TIdent of string  (** op names, keywords; may contain dots *)
  | TNum of string  (** numeric literal text *)
  | TPunct of char  (** ( ) { } [ ] , = : < > - *)
  | TArrow

let tokenize_line (lineno : int) (s : string) : tok list =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let is_ident c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '?'
  in
  let is_num c = (c >= '0' && c <= '9') || c = '.' || c = 'e' || c = 'E' in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '%' then begin
      incr i;
      let start = !i in
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done;
      if !i = start then err lineno "bad SSA name";
      toks := TPercent (int_of_string (String.sub s start (!i - start))) :: !toks
    end
    else if c = '@' then begin
      incr i;
      let start = !i in
      while !i < n && is_ident s.[!i] do
        incr i
      done;
      toks := TAt (String.sub s start (!i - start)) :: !toks
    end
    else if c = '-' && !i + 1 < n && s.[!i + 1] = '>' then begin
      i := !i + 2;
      toks := TArrow :: !toks
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && s.[!i + 1] >= '0' && s.[!i + 1] <= '9')
    then begin
      let start = !i in
      incr i;
      while
        !i < n
        && (is_num s.[!i]
           || ((s.[!i] = '-' || s.[!i] = '+')
              && (s.[!i - 1] = 'e' || s.[!i - 1] = 'E')))
      do
        incr i
      done;
      (* a digit run directly followed by letters (vector<8xf64>) stops at
         the first non-numeric character; the suffix lexes as an ident *)
      toks := TNum (String.sub s start (!i - start)) :: !toks
    end
    else if is_ident c then begin
      let start = !i in
      while !i < n && is_ident s.[!i] do
        incr i
      done;
      toks := TIdent (String.sub s start (!i - start)) :: !toks
    end
    else begin
      (match c with
      | '(' | ')' | '{' | '}' | '[' | ']' | ',' | '=' | ':' | '<' | '>' ->
          toks := TPunct c :: !toks
      | _ -> err lineno "unexpected character %C" c);
      incr i
    end
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Token-stream helpers                                                 *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : tok list; line : int }

let peek (s : stream) = match s.toks with [] -> None | t :: _ -> Some t
let pop (s : stream) =
  match s.toks with
  | [] -> err s.line "unexpected end of line"
  | t :: rest ->
      s.toks <- rest;
      t

let expect_punct (s : stream) (c : char) =
  match pop s with
  | TPunct c' when c = c' -> ()
  | _ -> err s.line "expected %C" c

let expect_ident (s : stream) (name : string) =
  match pop s with
  | TIdent n when n = name -> ()
  | _ -> err s.line "expected %s" name

let accept_punct (s : stream) (c : char) =
  match peek s with
  | Some (TPunct c') when c = c' ->
      ignore (pop s);
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Types                                                                *)
(* ------------------------------------------------------------------ *)

let parse_ty (s : stream) : Ty.t =
  match pop s with
  | TIdent "f64" -> Ty.F64
  | TIdent "i64" -> Ty.I64
  | TIdent "i1" -> Ty.I1
  | TIdent "memref" ->
      expect_punct s '<';
      (match pop s with
      | TIdent "?xf64" -> ()
      | _ -> err s.line "expected ?xf64 in memref type");
      expect_punct s '>';
      Ty.Memref
  | TIdent "vector" -> (
      expect_punct s '<';
      (* the lexeme is like 8xf64 *)
      match pop s with
      | TNum w_then_x -> (
          (* number may have been split: "8" then ident "xf64" *)
          let w = int_of_string w_then_x in
          match pop s with
          | TIdent x ->
              let elem =
                match x with
                | "xf64" -> Ty.F64
                | "xi64" -> Ty.I64
                | "xi1" -> Ty.I1
                | _ -> err s.line "bad vector element %s" x
              in
              expect_punct s '>';
              Ty.vec w elem
          | _ -> err s.line "bad vector type")
      | _ -> err s.line "bad vector width")
  | _ -> err s.line "expected a type"

let parse_ty_list (s : stream) : Ty.t list =
  (* ( ty, ty, ... ) possibly empty *)
  expect_punct s '(';
  if accept_punct s ')' then []
  else
    let rec loop acc =
      let t = parse_ty s in
      if accept_punct s ',' then loop (t :: acc)
      else begin
        expect_punct s ')';
        List.rev (t :: acc)
      end
    in
    loop []

(* ------------------------------------------------------------------ *)
(* Module structure                                                     *)
(* ------------------------------------------------------------------ *)

(* maps printed SSA numbers to freshly created values *)
type env = {
  ctx : Builder.ctx;
  values : (int, Value.t) Hashtbl.t;
  modl : Func.modl;
}

let define (env : env) (line : int) (n : int) (ty : Ty.t) : Value.t =
  if Hashtbl.mem env.values n then err line "value %%%d redefined" n;
  let v = Builder.fresh_value env.ctx ty in
  Hashtbl.replace env.values n v;
  v

let use (env : env) (line : int) (n : int) : Value.t =
  match Hashtbl.find_opt env.values n with
  | Some v -> v
  | None -> err line "use of undefined value %%%d" n

let percent (s : stream) : int =
  match pop s with TPercent n -> n | _ -> err s.line "expected %%N"

(* leading "%1, %2 = " result list; empty when the line starts with an op *)
let parse_result_ids (s : stream) : int list =
  match peek s with
  | Some (TPercent _) ->
      let rec loop acc =
        let n = percent s in
        if accept_punct s ',' then loop (n :: acc)
        else begin
          (match pop s with
          | TPunct '=' -> ()
          | _ -> err s.line "expected '=' after result list");
          List.rev (n :: acc)
        end
      in
      loop []
  | _ -> []

let parse_operand_ids (s : stream) : int list =
  match peek s with
  | Some (TPercent _) ->
      let rec loop acc =
        let n = percent s in
        if accept_punct s ',' then loop (n :: acc) else List.rev (n :: acc)
      in
      loop []
  | _ -> []

(* trailing " : (tys) -> tys" or " : tys" annotation *)
let parse_type_annot (s : stream) : Ty.t list * Ty.t list =
  match peek s with
  | Some (TPunct ':') -> (
      ignore (pop s);
      match peek s with
      | Some (TPunct '(') ->
          let params = parse_ty_list s in
          (match pop s with
          | TArrow -> ()
          | _ -> err s.line "expected ->");
          let results =
            match peek s with
            | Some (TPunct '(') -> parse_ty_list s
            | _ ->
                let rec loop acc =
                  let t = parse_ty s in
                  if accept_punct s ',' then loop (t :: acc)
                  else List.rev (t :: acc)
                in
                loop []
          in
          (params, results)
      | _ ->
          let rec loop acc =
            let t = parse_ty s in
            if accept_punct s ',' then loop (t :: acc) else List.rev (t :: acc)
          in
          ([], loop []))
  | _ -> ([], [])

let cmp_of_name line = function
  | "lt" -> Op.Lt
  | "le" -> Op.Le
  | "gt" -> Op.Gt
  | "ge" -> Op.Ge
  | "eq" -> Op.Eq
  | "ne" -> Op.Ne
  | p -> err line "unknown comparison predicate %s" p

(* simple (region-free, non-constant) op kinds by printed name *)
let simple_kind line (name : string) (operand_tys : Ty.t list) : Op.kind =
  match name with
  | "arith.addf" -> Op.BinF Op.FAdd
  | "arith.subf" -> Op.BinF Op.FSub
  | "arith.mulf" -> Op.BinF Op.FMul
  | "arith.divf" -> Op.BinF Op.FDiv
  | "arith.minf" -> Op.BinF Op.FMin
  | "arith.maxf" -> Op.BinF Op.FMax
  | "arith.remf" -> Op.BinF Op.FRem
  | "arith.negf" -> Op.NegF
  | "arith.addi" -> (
      (* printer reuses addi/ori/xori for booleans; disambiguate on type *)
      match operand_tys with
      | t :: _ when Ty.is_bool_like t -> Op.BinB Op.BAnd
      | _ -> Op.BinI Op.IAdd)
  | "arith.subi" -> Op.BinI Op.ISub
  | "arith.muli" -> Op.BinI Op.IMul
  | "arith.divsi" -> Op.BinI Op.IDiv
  | "arith.remsi" -> Op.BinI Op.IRem
  | "arith.andi" -> (
      match operand_tys with
      | t :: _ when Ty.is_bool_like t -> Op.BinB Op.BAnd
      | _ -> err line "andi on non-boolean operands unsupported")
  | "arith.ori" -> Op.BinB Op.BOr
  | "arith.xori" -> Op.BinB Op.BXor
  | "arith.not" -> Op.NotB
  | "arith.select" -> Op.Select
  | "arith.sitofp" -> Op.SIToFP
  | "arith.fptosi" -> Op.FPToSI
  | "vector.broadcast" -> Op.Broadcast
  | "vector.load" -> Op.VecLoad
  | "vector.store" -> Op.VecStore
  | "vector.gather" -> Op.Gather
  | "vector.scatter" -> Op.Scatter
  | "memref.alloc" -> Op.Alloc
  | "memref.load" -> Op.MemLoad
  | "memref.store" -> Op.MemStore
  | "scf.yield" -> Op.Yield
  | "func.return" -> Op.Return
  | _ ->
      if String.length name > 5 && String.sub name 0 5 = "math." then
        Op.Math (String.sub name 5 (String.length name - 5))
      else err line "unknown operation %s" name

(* ------------------------------------------------------------------ *)
(* Line-structured parsing of functions and regions                     *)
(* ------------------------------------------------------------------ *)

type lines = { mutable rest : (int * string) list }

let next_line (ls : lines) : (int * string) option =
  match ls.rest with
  | [] -> None
  | l :: rest ->
      ls.rest <- rest;
      Some l

let mk_op (env : env) (kind : Op.kind) (operands : Value.t list)
    (results : Value.t list) (regions : Op.region array) : Op.op =
  let id = Builder.fresh_op_id env.ctx in
  {
    Op.o_id = id;
    kind;
    operands = Array.of_list operands;
    results = Array.of_list results;
    regions;
  }

let rec parse_region_ops (env : env) (ls : lines) : Op.op list =
  let acc = ref [] in
  let rec loop () =
    match next_line ls with
    | None -> err 0 "unexpected end of input inside a region"
    | Some (lineno, line) ->
        let trimmed = String.trim line in
        if trimmed = "}" then ()
        else if trimmed = "} else {" then begin
          (* handled by scf.if: push back for the caller *)
          ls.rest <- (lineno, line) :: ls.rest
        end
        else begin
          acc := parse_op env ls lineno trimmed :: !acc;
          loop ()
        end
  in
  loop ();
  List.rev !acc

and parse_op (env : env) (ls : lines) (lineno : int) (line : string) : Op.op =
  let s = { toks = tokenize_line lineno line; line = lineno } in
  let result_ids = parse_result_ids s in
  match pop s with
  | TIdent "arith.constant" -> (
      (* %n = arith.constant <lit> : ty *)
      let lit = pop s in
      expect_punct s ':';
      let ty = parse_ty s in
      let kind =
        match (lit, ty) with
        | TNum t, Ty.F64 -> Op.ConstF (float_of_string t)
        | TNum t, Ty.I64 -> Op.ConstI (int_of_string t)
        | TIdent "inf", Ty.F64 -> Op.ConstF Float.infinity
        | TIdent "nan", Ty.F64 -> Op.ConstF Float.nan
        | TIdent "true", Ty.I1 -> Op.ConstB true
        | TIdent "false", Ty.I1 -> Op.ConstB false
        | _ -> err lineno "bad constant"
      in
      match result_ids with
      | [ n ] -> mk_op env kind [] [ define env lineno n ty ] [||]
      | _ -> err lineno "constant must have one result")
  | TIdent "arith.cmpf" | TIdent "arith.cmpi" ->
      (* arith.cmpf lt, %a, %b : ty — float vs int comes from the operand
         type annotation, so both spellings share a path *)
      let pred =
        match pop s with
        | TIdent p -> cmp_of_name lineno p
        | _ -> err lineno "expected predicate"
      in
      expect_punct s ',';
      let operand_ids = parse_operand_ids s in
      expect_punct s ':';
      let oty = parse_ty s in
      let operands = List.map (use env lineno) operand_ids in
      let fp = Ty.is_float_like oty in
      let kind = if fp then Op.CmpF pred else Op.CmpI pred in
      let rty = Ty.like ~like:oty Ty.I1 in
      let results = List.map (fun n -> define env lineno n rty) result_ids in
      mk_op env kind operands results [||]
  | TIdent "vector.extract" ->
      (* vector.extract %v [lane] : vecty *)
      let operand_ids = parse_operand_ids s in
      expect_punct s '[';
      let lane =
        match pop s with
        | TNum t -> int_of_string t
        | _ -> err lineno "expected lane"
      in
      expect_punct s ']';
      expect_punct s ':';
      let vty = parse_ty s in
      let elem = Ty.elem vty in
      let operands = List.map (use env lineno) operand_ids in
      let results = List.map (fun n -> define env lineno n elem) result_ids in
      mk_op env (Op.VecExtract lane) operands results [||]
  | TIdent "vector.step" ->
      (* vector.step  : vector<wxi64> *)
      let _ = parse_operand_ids s in
      let _, rtys = parse_type_annot s in
      let w = match rtys with [ t ] -> Ty.width t | _ -> err lineno "bad step" in
      let results = List.map (fun n -> define env lineno n (Ty.vec w Ty.I64)) result_ids in
      mk_op env (Op.Iota w) [] results [||]
  | TIdent "scf.for" | TIdent "scf.parallel" ->
      ls.rest <- (lineno, line) :: ls.rest;
      parse_for env ls
  | TIdent "scf.if" -> (
      (* [results =] scf.if %c {  ... [} else {] ... } — results typed by
         the yields; we reconstruct from the first region's yield *)
      let cond = use env lineno (percent s) in
      expect_punct s '{';
      let then_ops = parse_region_ops env ls in
      let else_ops =
        match next_line ls with
        | Some (_, l) when String.trim l = "} else {" -> parse_region_ops env ls
        | Some other ->
            ls.rest <- other :: ls.rest;
            []
        | None -> []
      in
      (* when the else branch is present, region parsing stopped at
         "} else {" inside parse_region_ops: handle the trailing brace *)
      let yield_tys =
        match List.rev then_ops with
        | { Op.kind = Op.Yield; operands; _ } :: _ ->
            Array.to_list operands |> List.map (fun (v : Value.t) -> v.Value.ty)
        | _ -> []
      in
      let results = List.map2 (fun n t -> define env lineno n t) result_ids yield_tys in
      let regions =
        [| { Op.r_args = []; r_ops = then_ops }; { Op.r_args = []; r_ops = else_ops } |]
      in
      mk_op env Op.If [ cond ] results regions)
  | TIdent "func.call" -> (
      (* func.call @name %a, %b : (tys) -> tys *)
      match pop s with
      | TAt callee ->
          let operand_ids = parse_operand_ids s in
          let _, rtys = parse_type_annot s in
          let operands = List.map (use env lineno) operand_ids in
          let results = List.map2 (fun n t -> define env lineno n t) result_ids rtys in
          mk_op env (Op.Call callee) operands results [||]
      | _ -> err lineno "expected callee after func.call")
  | TIdent name ->
      let operand_ids = parse_operand_ids s in
      let ptys, rtys = parse_type_annot s in
      let kind = simple_kind lineno name ptys in
      let operands = List.map (use env lineno) operand_ids in
      let results = List.map2 (fun n t -> define env lineno n t) result_ids rtys in
      mk_op env kind operands results [||]
  | _ -> err lineno "expected an operation"

and parse_for (env : env) (ls : lines) : Op.op =
  match next_line ls with
  | None -> err 0 "missing scf.for line"
  | Some (lineno, line) ->
      let s = { toks = tokenize_line lineno line; line = lineno } in
      let result_ids = parse_result_ids s in
      let parallel =
        match pop s with
        | TIdent "scf.for" -> false
        | TIdent "scf.parallel" -> true
        | _ -> err lineno "expected scf.for"
      in
      let iv_id = percent s in
      expect_punct s '=';
      let lb = use env lineno (percent s) in
      expect_ident s "to";
      let ub = use env lineno (percent s) in
      expect_ident s "step";
      let step = use env lineno (percent s) in
      (* optional iter_args(%a = %i, ...) *)
      let iter_pairs =
        match peek s with
        | Some (TIdent "iter_args") ->
            ignore (pop s);
            expect_punct s '(';
            (* printed as iter_args(%a1, %a2 = %i1, %i2) *)
            let args = parse_operand_ids s in
            expect_punct s '=';
            let inits = parse_operand_ids s in
            expect_punct s ')';
            if List.length args <> List.length inits then
              err lineno "iter_args arity mismatch";
            List.combine args inits
        | _ -> []
      in
      expect_punct s '{';
      let inits = List.map (fun (_, i) -> use env lineno i) iter_pairs in
      let iv = define env lineno iv_id Ty.I64 in
      let iter_args =
        List.map2
          (fun (a, _) (init : Value.t) -> define env lineno a init.ty)
          iter_pairs inits
      in
      let body = parse_region_ops env ls in
      let region = { Op.r_args = iv :: iter_args; r_ops = body } in
      let results =
        List.map2
          (fun n (init : Value.t) -> define env lineno n init.ty)
          result_ids inits
      in
      mk_op env (Op.For { parallel }) (lb :: ub :: step :: inits) results
        [| region |]

(* func.func @name(%1 : ty, ...) -> (tys) { *)
let parse_func_header (env : env) (lineno : int) (line : string) :
    string * Value.t list * Ty.t list =
  let s = { toks = tokenize_line lineno line; line = lineno } in
  expect_ident s "func.func";
  let name = match pop s with TAt n -> n | _ -> err lineno "expected @name" in
  expect_punct s '(';
  let params = ref [] in
  (if not (accept_punct s ')') then
     let rec loop () =
       let n = percent s in
       expect_punct s ':';
       let ty = parse_ty s in
       params := define env lineno n ty :: !params;
       if accept_punct s ',' then loop () else expect_punct s ')'
     in
     loop ());
  (match pop s with TArrow -> () | _ -> err lineno "expected ->");
  let results = parse_ty_list s in
  expect_punct s '{';
  (name, List.rev !params, results)

(* func.func private @name(tys) -> (tys) *)
let parse_extern (lineno : int) (line : string) : Func.extern_sig =
  let s = { toks = tokenize_line lineno line; line = lineno } in
  expect_ident s "func.func";
  expect_ident s "private";
  let name = match pop s with TAt n -> n | _ -> err lineno "expected @name" in
  let params = parse_ty_list s in
  (match pop s with TArrow -> () | _ -> err lineno "expected ->");
  let results = parse_ty_list s in
  { Func.e_name = name; e_params = params; e_results = results }

(** Parse a module in {!Printer} syntax. *)
let parse_module (text : string) : Func.modl =
  let raw_lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter (fun (_, l) -> String.trim l <> "")
  in
  let ls = { rest = raw_lines } in
  let header =
    match next_line ls with
    | Some (n, l) -> (n, String.trim l)
    | None -> err 0 "empty module"
  in
  let mname =
    let n, l = header in
    let s = { toks = tokenize_line n l; line = n } in
    expect_ident s "module";
    let name = match pop s with TAt m -> m | _ -> err n "expected @name" in
    expect_punct s '{';
    name
  in
  let modl = Func.create_module mname in
  let env = { ctx = Builder.create_ctx (); values = Hashtbl.create 64; modl } in
  let rec loop () =
    match next_line ls with
    | None -> err 0 "missing closing brace of module"
    | Some (n, raw) -> (
        let l = String.trim raw in
        if l = "}" then ()
        else if
          String.length l >= 17 && String.sub l 0 17 = "func.func private"
        then begin
          Func.declare_extern modl (parse_extern n l);
          loop ()
        end
        else if String.length l >= 9 && String.sub l 0 9 = "func.func" then begin
          let name, params, results = parse_func_header env n l in
          let body_ops = parse_region_ops env ls in
          Func.add_func modl
            {
              Func.f_name = name;
              f_params = params;
              f_results = results;
              f_body = { Op.r_args = []; r_ops = body_ops };
            };
          loop ()
        end
        else err n "expected a function or '}'")
  in
  loop ();
  modl

let parse_module_result (text : string) : (Func.modl, string) result =
  match parse_module text with
  | m -> Ok m
  | exception Error { line; msg } ->
      Result.Error (Printf.sprintf "line %d: %s" line msg)
