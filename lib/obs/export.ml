(** Trace exporters: Chrome trace-event JSON (Perfetto /
    chrome://tracing), a human-readable summary table, and
    Prometheus-style text.  All three render a {!Tracer.snapshot}, so
    the recording side never knows which format (if any) will consume
    it. *)

(* -- per-span aggregation --------------------------------------------- *)

type span_stat = {
  ss_name : string;
  ss_count : int;
  ss_total_us : float;
  ss_min_us : float;
  ss_max_us : float;
}

(** Aggregate matched Begin/End pairs into per-name duration stats.
    Snapshots are balanced per domain, so a simple per-domain stack walk
    pairs every End with its innermost open Begin. *)
let summarize (s : Tracer.snapshot) : span_stat list =
  let stats : (string, span_stat ref) Hashtbl.t = Hashtbl.create 32 in
  let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack dom =
    match Hashtbl.find_opt stacks dom with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks dom s;
        s
  in
  List.iter
    (fun (e : Tracer.event) ->
      let st = stack e.Tracer.ev_dom in
      match e.Tracer.ev_kind with
      | Tracer.Begin -> st := (e.Tracer.ev_name, e.Tracer.ev_ts) :: !st
      | Tracer.End -> (
          match !st with
          | [] -> ()
          | (name, t_begin) :: rest ->
              st := rest;
              let dur = e.Tracer.ev_ts -. t_begin in
              (match Hashtbl.find_opt stats name with
              | Some r ->
                  r :=
                    {
                      !r with
                      ss_count = !r.ss_count + 1;
                      ss_total_us = !r.ss_total_us +. dur;
                      ss_min_us = Float.min !r.ss_min_us dur;
                      ss_max_us = Float.max !r.ss_max_us dur;
                    }
              | None ->
                  Hashtbl.add stats name
                    (ref
                       {
                         ss_name = name;
                         ss_count = 1;
                         ss_total_us = dur;
                         ss_min_us = dur;
                         ss_max_us = dur;
                       }))))
    s.Tracer.events;
  Hashtbl.fold (fun _ r acc -> !r :: acc) stats []
  |> List.sort (fun a b -> compare b.ss_total_us a.ss_total_us)

(* -- Chrome trace-event JSON ------------------------------------------ *)

(** Chrome trace-event format (the JSON Array Format wrapped in an
    object, as Perfetto and chrome://tracing load it): one ["B"]/["E"]
    pair per span with [tid] = Domain id (per-Domain tracks), one ["C"]
    event per counter, and ["M"] metadata events naming the tracks. *)
let chrome (s : Tracer.snapshot) : string =
  let open Json in
  let doms =
    List.sort_uniq compare
      (List.map (fun (e : Tracer.event) -> e.Tracer.ev_dom) s.Tracer.events)
  in
  let meta =
    Obj
      [
        ("name", Str "process_name"); ("ph", Str "M"); ("pid", Num 1.0);
        ("tid", Num 0.0);
        ("args", Obj [ ("name", Str "limpetmlir") ]);
      ]
    :: List.map
         (fun d ->
           Obj
             [
               ("name", Str "thread_name"); ("ph", Str "M"); ("pid", Num 1.0);
               ("tid", Num (float_of_int d));
               ("args", Obj [ ("name", Str (Printf.sprintf "domain-%d" d)) ]);
             ])
         doms
  in
  let spans =
    List.map
      (fun (e : Tracer.event) ->
        Obj
          [
            ("name", Str e.Tracer.ev_name);
            ( "ph",
              Str (match e.Tracer.ev_kind with Tracer.Begin -> "B" | Tracer.End -> "E") );
            ("ts", Num e.Tracer.ev_ts);
            ("pid", Num 1.0);
            ("tid", Num (float_of_int e.Tracer.ev_dom));
          ])
      s.Tracer.events
  in
  let last_ts =
    List.fold_left
      (fun acc (e : Tracer.event) -> Float.max acc e.Tracer.ev_ts)
      0.0 s.Tracer.events
  in
  let counters =
    List.map
      (fun (name, v) ->
        Obj
          [
            ("name", Str name); ("ph", Str "C"); ("ts", Num last_ts);
            ("pid", Num 1.0); ("tid", Num 0.0);
            ("args", Obj [ ("value", Num v) ]);
          ])
      (s.Tracer.counters
      @ List.map (fun (n, v) -> ("gauge:" ^ n, v)) s.Tracer.gauges)
  in
  to_string
    (Obj
       [
         ("traceEvents", Arr (meta @ spans @ counters));
         ("displayTimeUnit", Str "ms");
         ("otherData", Obj [ ("dropped", Num (float_of_int s.Tracer.dropped)) ]);
       ])

(** Validate a Chrome trace produced by {!chrome} (also used by the
    round-trip tests and the CI smoke): parses as JSON, every span event
    carries name/ph/ts/pid/tid, B/E nest properly per tid, and per-tid
    timestamps are monotonic.  Returns the number of B/E events. *)
let validate_chrome (text : string) : (int, string) result =
  let open Json in
  let ( let* ) r f = Result.bind r f in
  let* v = parse text in
  let* evs =
    match member "traceEvents" v |> Option.map to_list with
    | Some (Some evs) -> Ok evs
    | _ -> Error "no traceEvents array"
  in
  let depth : (float, int) Hashtbl.t = Hashtbl.create 8 in
  let last : (float, float) Hashtbl.t = Hashtbl.create 8 in
  let nspan = ref 0 in
  let rec go = function
    | [] ->
        let unbalanced = Hashtbl.fold (fun _ d acc -> acc + d) depth 0 in
        if unbalanced <> 0 then
          Error (Printf.sprintf "%d unbalanced span(s)" unbalanced)
        else Ok !nspan
    | e :: rest -> (
        match member "ph" e |> Option.map to_str with
        | Some (Some ("M" | "C")) -> go rest
        | Some (Some (("B" | "E") as ph)) -> (
            match
              ( member "name" e |> Option.map to_str,
                member "ts" e |> Option.map to_float,
                member "tid" e |> Option.map to_float )
            with
            | Some (Some _), Some (Some ts), Some (Some tid) ->
                incr nspan;
                let prev =
                  Option.value ~default:Float.neg_infinity
                    (Hashtbl.find_opt last tid)
                in
                if ts < prev then
                  Error (Printf.sprintf "non-monotonic ts on tid %g" tid)
                else begin
                  Hashtbl.replace last tid ts;
                  let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
                  let d' = if ph = "B" then d + 1 else d - 1 in
                  if d' < 0 then
                    Error (Printf.sprintf "E without B on tid %g" tid)
                  else begin
                    Hashtbl.replace depth tid d';
                    go rest
                  end
                end
            | _ -> Error "span event missing name/ts/tid")
        | _ -> Error "event missing ph")
  in
  go evs

(* -- human-readable summary ------------------------------------------- *)

let summary (s : Tracer.snapshot) : string =
  let b = Buffer.create 1024 in
  let spans = summarize s in
  if spans <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "%-32s %8s %12s %12s %12s %12s\n" "span" "count"
         "total ms" "mean us" "min us" "max us");
    List.iter
      (fun ss ->
        Buffer.add_string b
          (Printf.sprintf "%-32s %8d %12.3f %12.1f %12.1f %12.1f\n" ss.ss_name
             ss.ss_count (ss.ss_total_us /. 1e3)
             (ss.ss_total_us /. float_of_int ss.ss_count)
             ss.ss_min_us ss.ss_max_us))
      spans
  end;
  if s.Tracer.counters <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "\n%-32s %16s\n" "counter" "value");
    List.iter
      (fun (name, v) ->
        Buffer.add_string b (Printf.sprintf "%-32s %16.0f\n" name v))
      s.Tracer.counters
  end;
  if s.Tracer.gauges <> [] then begin
    Buffer.add_string b (Printf.sprintf "\n%-32s %16s\n" "gauge" "value");
    List.iter
      (fun (name, v) ->
        Buffer.add_string b (Printf.sprintf "%-32s %16g\n" name v))
      s.Tracer.gauges
  end;
  if s.Tracer.dropped > 0 then
    Buffer.add_string b
      (Printf.sprintf "\n(%d event(s) dropped to ring overwrite)\n"
         s.Tracer.dropped);
  Buffer.contents b

(* -- Prometheus text exposition --------------------------------------- *)

let prom_label (s : string) : string =
  (* label values: escape backslash, quote and newline per the text
     exposition format *)
  let b = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prometheus (s : Tracer.snapshot) : string =
  let b = Buffer.create 1024 in
  let spans = summarize s in
  Buffer.add_string b
    "# HELP limpetmlir_span_us_total Total time in span, microseconds.\n";
  Buffer.add_string b "# TYPE limpetmlir_span_us_total counter\n";
  List.iter
    (fun ss ->
      Buffer.add_string b
        (Printf.sprintf "limpetmlir_span_us_total{span=\"%s\"} %.3f\n"
           (prom_label ss.ss_name) ss.ss_total_us))
    spans;
  Buffer.add_string b "# HELP limpetmlir_span_count Completed span count.\n";
  Buffer.add_string b "# TYPE limpetmlir_span_count counter\n";
  List.iter
    (fun ss ->
      Buffer.add_string b
        (Printf.sprintf "limpetmlir_span_count{span=\"%s\"} %d\n"
           (prom_label ss.ss_name) ss.ss_count))
    spans;
  Buffer.add_string b "# HELP limpetmlir_counter Event counters.\n";
  Buffer.add_string b "# TYPE limpetmlir_counter counter\n";
  List.iter
    (fun (name, v) ->
      Buffer.add_string b
        (Printf.sprintf "limpetmlir_counter{name=\"%s\"} %g\n"
           (prom_label name) v))
    s.Tracer.counters;
  Buffer.add_string b "# HELP limpetmlir_gauge Point-in-time gauges.\n";
  Buffer.add_string b "# TYPE limpetmlir_gauge gauge\n";
  List.iter
    (fun (name, v) ->
      Buffer.add_string b
        (Printf.sprintf "limpetmlir_gauge{name=\"%s\"} %g\n" (prom_label name)
           v))
    s.Tracer.gauges;
  Buffer.contents b
