(** Trace exporters: Chrome trace-event JSON (Perfetto /
    chrome://tracing), a human-readable summary table, and
    Prometheus-style text.  All three render a {!Tracer.snapshot}, so
    the recording side never knows which format (if any) will consume
    it. *)

(* -- per-span aggregation --------------------------------------------- *)

type span_stat = {
  ss_name : string;
  ss_count : int;
  ss_total_us : float;
  ss_min_us : float;
  ss_max_us : float;
}

(** Aggregate matched Begin/End pairs into per-name duration stats.
    Snapshots are balanced per domain, so a simple per-domain stack walk
    pairs every End with its innermost open Begin. *)
let summarize (s : Tracer.snapshot) : span_stat list =
  let stats : (string, span_stat ref) Hashtbl.t = Hashtbl.create 32 in
  let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack dom =
    match Hashtbl.find_opt stacks dom with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks dom s;
        s
  in
  List.iter
    (fun (e : Tracer.event) ->
      let st = stack e.Tracer.ev_dom in
      match e.Tracer.ev_kind with
      | Tracer.Begin -> st := (e.Tracer.ev_name, e.Tracer.ev_ts) :: !st
      | Tracer.End -> (
          match !st with
          | [] -> ()
          | (name, t_begin) :: rest ->
              st := rest;
              let dur = e.Tracer.ev_ts -. t_begin in
              (match Hashtbl.find_opt stats name with
              | Some r ->
                  r :=
                    {
                      !r with
                      ss_count = !r.ss_count + 1;
                      ss_total_us = !r.ss_total_us +. dur;
                      ss_min_us = Float.min !r.ss_min_us dur;
                      ss_max_us = Float.max !r.ss_max_us dur;
                    }
              | None ->
                  Hashtbl.add stats name
                    (ref
                       {
                         ss_name = name;
                         ss_count = 1;
                         ss_total_us = dur;
                         ss_min_us = dur;
                         ss_max_us = dur;
                       }))))
    s.Tracer.events;
  Hashtbl.fold (fun _ r acc -> !r :: acc) stats []
  |> List.sort (fun a b -> compare b.ss_total_us a.ss_total_us)

(* -- Chrome trace-event JSON ------------------------------------------ *)

(** Chrome trace-event format (the JSON Array Format wrapped in an
    object, as Perfetto and chrome://tracing load it): one ["B"]/["E"]
    pair per span with [tid] = Domain id (per-Domain tracks), one ["C"]
    event per counter, and ["M"] metadata events naming the tracks. *)
let chrome (s : Tracer.snapshot) : string =
  let open Json in
  let doms =
    List.sort_uniq compare
      (List.map (fun (e : Tracer.event) -> e.Tracer.ev_dom) s.Tracer.events)
  in
  let meta =
    Obj
      [
        ("name", Str "process_name"); ("ph", Str "M"); ("pid", Num 1.0);
        ("tid", Num 0.0);
        ("args", Obj [ ("name", Str "limpetmlir") ]);
      ]
    :: List.map
         (fun d ->
           Obj
             [
               ("name", Str "thread_name"); ("ph", Str "M"); ("pid", Num 1.0);
               ("tid", Num (float_of_int d));
               ("args", Obj [ ("name", Str (Printf.sprintf "domain-%d" d)) ]);
             ])
         doms
  in
  let spans =
    List.map
      (fun (e : Tracer.event) ->
        Obj
          [
            ("name", Str e.Tracer.ev_name);
            ( "ph",
              Str (match e.Tracer.ev_kind with Tracer.Begin -> "B" | Tracer.End -> "E") );
            ("ts", Num e.Tracer.ev_ts);
            ("pid", Num 1.0);
            ("tid", Num (float_of_int e.Tracer.ev_dom));
          ])
      s.Tracer.events
  in
  let last_ts =
    List.fold_left
      (fun acc (e : Tracer.event) -> Float.max acc e.Tracer.ev_ts)
      0.0 s.Tracer.events
  in
  let counters =
    List.map
      (fun (name, v) ->
        Obj
          [
            ("name", Str name); ("ph", Str "C"); ("ts", Num last_ts);
            ("pid", Num 1.0); ("tid", Num 0.0);
            ("args", Obj [ ("value", Num v) ]);
          ])
      (s.Tracer.counters
      @ List.map (fun (n, v) -> ("gauge:" ^ n, v)) s.Tracer.gauges)
  in
  to_string
    (Obj
       [
         ("traceEvents", Arr (meta @ spans @ counters));
         ("displayTimeUnit", Str "ms");
         ("otherData", Obj [ ("dropped", Num (float_of_int s.Tracer.dropped)) ]);
       ])

(** Validate a Chrome trace produced by {!chrome} (also used by the
    round-trip tests and the CI smoke): parses as JSON, every span event
    carries name/ph/ts/pid/tid, B/E nest properly per tid, and per-tid
    timestamps are monotonic.  Returns the number of B/E events. *)
let validate_chrome (text : string) : (int, string) result =
  let open Json in
  let ( let* ) r f = Result.bind r f in
  let* v = parse text in
  let* evs =
    match member "traceEvents" v |> Option.map to_list with
    | Some (Some evs) -> Ok evs
    | _ -> Error "no traceEvents array"
  in
  let depth : (float, int) Hashtbl.t = Hashtbl.create 8 in
  let last : (float, float) Hashtbl.t = Hashtbl.create 8 in
  let nspan = ref 0 in
  let rec go = function
    | [] ->
        let unbalanced = Hashtbl.fold (fun _ d acc -> acc + d) depth 0 in
        if unbalanced <> 0 then
          Error (Printf.sprintf "%d unbalanced span(s)" unbalanced)
        else Ok !nspan
    | e :: rest -> (
        match member "ph" e |> Option.map to_str with
        | Some (Some ("M" | "C")) -> go rest
        | Some (Some (("B" | "E") as ph)) -> (
            match
              ( member "name" e |> Option.map to_str,
                member "ts" e |> Option.map to_float,
                member "tid" e |> Option.map to_float )
            with
            | Some (Some _), Some (Some ts), Some (Some tid) ->
                incr nspan;
                let prev =
                  Option.value ~default:Float.neg_infinity
                    (Hashtbl.find_opt last tid)
                in
                if ts < prev then
                  Error (Printf.sprintf "non-monotonic ts on tid %g" tid)
                else begin
                  Hashtbl.replace last tid ts;
                  let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
                  let d' = if ph = "B" then d + 1 else d - 1 in
                  if d' < 0 then
                    Error (Printf.sprintf "E without B on tid %g" tid)
                  else begin
                    Hashtbl.replace depth tid d';
                    go rest
                  end
                end
            | _ -> Error "span event missing name/ts/tid")
        | _ -> Error "event missing ph")
  in
  go evs

(* -- build identity ---------------------------------------------------- *)

(* Who produced these numbers.  The CLI fills this in (obs cannot depend
   on codegen or exec); the exposition renders it as the conventional
   constant-1 info gauge, and the summary as a header line. *)
type build_info = {
  bi_version : string;
  bi_ocaml : string;
  bi_pipeline : string;
  bi_toolchain : string;
}

(* Flight-recorder counters ({!Recorder.stats} fills this record). *)
type checkpoint_stats = {
  cp_last_step : int;
  cp_writes : int;
  cp_bytes : int;
  cp_write_ms : float;
  cp_verify_failures : int;
}

(* Step progress of a live run. *)
type progress = {
  pg_model : string;
  pg_step : int;
  pg_steps_total : int;
  pg_time_ms : float;
}

(* -- human-readable summary ------------------------------------------- *)

let summary ?(health : Health.snapshot option) ?(build : build_info option)
    (s : Tracer.snapshot) : string =
  let b = Buffer.create 1024 in
  Option.iter
    (fun bi ->
      Buffer.add_string b
        (Printf.sprintf
           "build: limpetmlir %s (ocaml %s, pipeline %s, toolchain %s)\n"
           bi.bi_version bi.bi_ocaml bi.bi_pipeline bi.bi_toolchain))
    build;
  let spans = summarize s in
  if spans <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "%-32s %8s %12s %12s %12s %12s\n" "span" "count"
         "total ms" "mean us" "min us" "max us");
    List.iter
      (fun ss ->
        Buffer.add_string b
          (Printf.sprintf "%-32s %8d %12.3f %12.1f %12.1f %12.1f\n" ss.ss_name
             ss.ss_count (ss.ss_total_us /. 1e3)
             (ss.ss_total_us /. float_of_int ss.ss_count)
             ss.ss_min_us ss.ss_max_us))
      spans
  end;
  if s.Tracer.counters <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "\n%-32s %16s\n" "counter" "value");
    List.iter
      (fun (name, v) ->
        Buffer.add_string b (Printf.sprintf "%-32s %16.0f\n" name v))
      s.Tracer.counters
  end;
  if s.Tracer.gauges <> [] then begin
    Buffer.add_string b (Printf.sprintf "\n%-32s %16s\n" "gauge" "value");
    List.iter
      (fun (name, v) ->
        Buffer.add_string b (Printf.sprintf "%-32s %16g\n" name v))
      s.Tracer.gauges
  end;
  if s.Tracer.dropped > 0 then
    Buffer.add_string b
      (Printf.sprintf "\n(%d event(s) dropped to ring overwrite)\n"
         s.Tracer.dropped);
  Option.iter
    (fun (h : Health.snapshot) ->
      let nan, inf, range = Health.totals h in
      Buffer.add_string b
        (Printf.sprintf
           "\nhealth (%s): %s — %d step(s) sampled, %d NaN, %d Inf, %d range \
            violation(s)\n"
           h.Health.hs_model
           (if h.Health.hs_unhealthy then "UNHEALTHY"
            else if h.Health.hs_tripped then "degraded"
            else "ok")
           h.Health.hs_steps_sampled nan inf range);
      Buffer.add_string b
        (Printf.sprintf "%-24s %10s %12s %12s %12s %6s %6s %6s\n" "variable"
           "samples" "min" "mean" "max" "nan" "inf" "range");
      List.iter
        (fun (vs : Health.var_stat) ->
          Buffer.add_string b
            (Printf.sprintf "%-24s %10d %12g %12g %12g %6d %6d %6d\n"
               (vs.Health.vs_name ^ if vs.Health.vs_gate then " (gate)" else "")
               vs.Health.vs_samples vs.Health.vs_min vs.Health.vs_mean
               vs.Health.vs_max vs.Health.vs_nan vs.Health.vs_inf
               vs.Health.vs_range))
        h.Health.hs_vars;
      List.iter
        (fun tr ->
          Buffer.add_string b
            (Printf.sprintf "trip: %s\n"
               (Printf.sprintf
                  "variable=%s reason=%s cell=%d step=%d value=%g"
                  tr.Health.t_var
                  (Health.reason_name tr.Health.t_reason)
                  tr.Health.t_cell tr.Health.t_step tr.Health.t_value)))
        h.Health.hs_trips)
    health;
  Buffer.contents b

(* -- Prometheus text exposition --------------------------------------- *)

let prom_label (s : string) : string =
  (* label values: escape backslash, quote and newline per the text
     exposition format *)
  let b = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Sample values: canonical nonfinite spellings.  [%g] would print
   [nan]/[inf]/[-inf], which Prometheus' Go parser happens to accept but
   OpenMetrics parsers reject; [NaN]/[+Inf]/[-Inf] are the exposition
   format's documented spellings ({!validate_prometheus} enforces them,
   and health gauges legitimately carry NaN when nothing was sampled). *)
let prom_value (v : float) : string =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%g" v

let prom_health (b : Buffer.t) (h : Health.snapshot) : unit =
  let model = prom_label h.Health.hs_model in
  let family ~name ~help ~typ emit =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ);
    emit name
  in
  family ~name:"limpetmlir_health_steps_sampled"
    ~help:"Simulation steps sampled by the health monitor."
    ~typ:"counter" (fun name ->
      Buffer.add_string b
        (Printf.sprintf "%s{model=\"%s\"} %d\n" name model
           h.Health.hs_steps_sampled));
  let per_var ~name ~help ~typ (f : Health.var_stat -> string) =
    family ~name ~help ~typ (fun name ->
        List.iter
          (fun (vs : Health.var_stat) ->
            Buffer.add_string b
              (Printf.sprintf "%s{model=\"%s\",var=\"%s\"} %s\n" name model
                 (prom_label vs.Health.vs_name) (f vs)))
          h.Health.hs_vars)
  in
  per_var ~name:"limpetmlir_health_samples"
    ~help:"Finite cell-samples per monitored variable." ~typ:"counter"
    (fun vs -> string_of_int vs.Health.vs_samples);
  per_var ~name:"limpetmlir_health_nan_total"
    ~help:"NaN observations per monitored variable." ~typ:"counter" (fun vs ->
      string_of_int vs.Health.vs_nan);
  per_var ~name:"limpetmlir_health_inf_total"
    ~help:"Infinity observations per monitored variable." ~typ:"counter"
    (fun vs -> string_of_int vs.Health.vs_inf);
  per_var ~name:"limpetmlir_health_range_total"
    ~help:"Range violations (gate outside [0,1], Vm outside the watchdog \
           window) per monitored variable."
    ~typ:"counter" (fun vs -> string_of_int vs.Health.vs_range);
  family ~name:"limpetmlir_health_state"
    ~help:"Streaming per-variable statistics over finite samples."
    ~typ:"gauge" (fun name ->
      List.iter
        (fun (vs : Health.var_stat) ->
          List.iter
            (fun (stat, v) ->
              Buffer.add_string b
                (Printf.sprintf "%s{model=\"%s\",var=\"%s\",stat=\"%s\"} %s\n"
                   name model
                   (prom_label vs.Health.vs_name)
                   stat (prom_value v)))
            [
              ("min", vs.Health.vs_min); ("mean", vs.Health.vs_mean);
              ("max", vs.Health.vs_max);
            ])
        h.Health.hs_vars);
  family ~name:"limpetmlir_health_tripped"
    ~help:"1 when any health watchdog tripped (including gate-range warnings)."
    ~typ:"gauge" (fun name ->
      Buffer.add_string b
        (Printf.sprintf "%s{model=\"%s\"} %d\n" name model
           (if h.Health.hs_tripped then 1 else 0)));
  family ~name:"limpetmlir_health_unhealthy"
    ~help:"1 when a hard watchdog tripped (NaN / Inf / Vm range) — the \
           /healthz state."
    ~typ:"gauge" (fun name ->
      Buffer.add_string b
        (Printf.sprintf "%s{model=\"%s\"} %d\n" name model
           (if h.Health.hs_unhealthy then 1 else 0)))

(* Tissue-scale counters (activation coverage, conduction-block trips,
   measured conduction velocity).  Defined here rather than in the
   tissue library so the exposition layer stays dependency-free: the
   monodomain engine fills this record in, obs renders it. *)
type tissue_stats = {
  tt_model : string;
  tt_cells : int;  (** tissue size (real cells) *)
  tt_activated : int;  (** cells whose upstroke was detected *)
  tt_reactivated : int;  (** cells re-activated after full repolarization *)
  tt_block_trips : int;  (** conduction-block detector trips *)
  tt_cv : float option;  (** measured conduction velocity, cm/ms *)
}

let prom_tissue (b : Buffer.t) (t : tissue_stats) : unit =
  let model = prom_label t.tt_model in
  let family ~name ~help ~typ v =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ);
    Buffer.add_string b
      (Printf.sprintf "%s{model=\"%s\"} %s\n" name model v)
  in
  family ~name:"limpetmlir_tissue_cells"
    ~help:"Tissue size in cells." ~typ:"gauge" (string_of_int t.tt_cells);
  family ~name:"limpetmlir_tissue_activated_cells"
    ~help:"Cells whose first upstroke was detected." ~typ:"gauge"
    (string_of_int t.tt_activated);
  family ~name:"limpetmlir_tissue_activation_coverage"
    ~help:"Fraction of cells activated (activated / cells)." ~typ:"gauge"
    (prom_value
       (if t.tt_cells = 0 then Float.nan
        else float_of_int t.tt_activated /. float_of_int t.tt_cells));
  family ~name:"limpetmlir_tissue_reactivated_cells"
    ~help:"Cells re-activated after full repolarization (reentry \
           indicator)."
    ~typ:"gauge"
    (string_of_int t.tt_reactivated);
  family ~name:"limpetmlir_tissue_conduction_block_total"
    ~help:"Conduction-block watchdog trips (no activation past the \
           stimulus site inside the plausibility window)."
    ~typ:"counter"
    (string_of_int t.tt_block_trips);
  family ~name:"limpetmlir_tissue_conduction_velocity_cm_ms"
    ~help:"Measured conduction velocity between the probe cells, cm/ms \
           (NaN until both probes activated)."
    ~typ:"gauge"
    (prom_value (match t.tt_cv with Some cv -> cv | None -> Float.nan))

let prom_build (b : Buffer.t) (bi : build_info) : unit =
  Buffer.add_string b
    "# HELP limpetmlir_build_info Build identity (constant 1; the \
     information is in the labels).\n";
  Buffer.add_string b "# TYPE limpetmlir_build_info gauge\n";
  Buffer.add_string b
    (Printf.sprintf
       "limpetmlir_build_info{version=\"%s\",ocaml=\"%s\",pipeline=\"%s\",\
        toolchain=\"%s\"} 1\n"
       (prom_label bi.bi_version) (prom_label bi.bi_ocaml)
       (prom_label bi.bi_pipeline)
       (prom_label bi.bi_toolchain))

let prom_checkpoint (b : Buffer.t) (c : checkpoint_stats) : unit =
  let family ~name ~help ~typ v =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ);
    Buffer.add_string b (Printf.sprintf "%s %s\n" name v)
  in
  family ~name:"limpetmlir_checkpoint_last_step"
    ~help:"Step index of the newest checkpoint (-1 before the first \
           write)."
    ~typ:"gauge"
    (string_of_int c.cp_last_step);
  family ~name:"limpetmlir_checkpoint_writes_total"
    ~help:"Checkpoint files written." ~typ:"counter"
    (string_of_int c.cp_writes);
  family ~name:"limpetmlir_checkpoint_bytes_total"
    ~help:"Serialized checkpoint bytes written." ~typ:"counter"
    (string_of_int c.cp_bytes);
  family ~name:"limpetmlir_checkpoint_write_ms_total"
    ~help:"Milliseconds spent writing (and verifying) checkpoints."
    ~typ:"counter"
    (prom_value c.cp_write_ms);
  family ~name:"limpetmlir_checkpoint_digest_verify_failures_total"
    ~help:"Checkpoint re-reads whose content digest failed to verify."
    ~typ:"counter"
    (string_of_int c.cp_verify_failures)

let prom_progress (b : Buffer.t) (p : progress) : unit =
  let model = prom_label p.pg_model in
  let family ~name ~help v =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" name);
    Buffer.add_string b (Printf.sprintf "%s{model=\"%s\"} %s\n" name model v)
  in
  family ~name:"limpetmlir_sim_step" ~help:"Simulation steps completed."
    (string_of_int p.pg_step);
  family ~name:"limpetmlir_sim_steps_total"
    ~help:"Planned simulation steps (0 = run until stopped)."
    (string_of_int p.pg_steps_total);
  family ~name:"limpetmlir_sim_time_ms"
    ~help:"Simulation clock, milliseconds."
    (prom_value p.pg_time_ms)

let prometheus ?(health : Health.snapshot option)
    ?(tissue : tissue_stats option) ?(build : build_info option)
    ?(checkpoint : checkpoint_stats option) ?(progress : progress option)
    (s : Tracer.snapshot) : string =
  let b = Buffer.create 1024 in
  let spans = summarize s in
  Buffer.add_string b
    "# HELP limpetmlir_span_us_total Total time in span, microseconds.\n";
  Buffer.add_string b "# TYPE limpetmlir_span_us_total counter\n";
  List.iter
    (fun ss ->
      Buffer.add_string b
        (Printf.sprintf "limpetmlir_span_us_total{span=\"%s\"} %.3f\n"
           (prom_label ss.ss_name) ss.ss_total_us))
    spans;
  Buffer.add_string b "# HELP limpetmlir_span_count Completed span count.\n";
  Buffer.add_string b "# TYPE limpetmlir_span_count counter\n";
  List.iter
    (fun ss ->
      Buffer.add_string b
        (Printf.sprintf "limpetmlir_span_count{span=\"%s\"} %d\n"
           (prom_label ss.ss_name) ss.ss_count))
    spans;
  Buffer.add_string b "# HELP limpetmlir_counter Event counters.\n";
  Buffer.add_string b "# TYPE limpetmlir_counter counter\n";
  List.iter
    (fun (name, v) ->
      Buffer.add_string b
        (Printf.sprintf "limpetmlir_counter{name=\"%s\"} %s\n"
           (prom_label name) (prom_value v)))
    s.Tracer.counters;
  Buffer.add_string b "# HELP limpetmlir_gauge Point-in-time gauges.\n";
  Buffer.add_string b "# TYPE limpetmlir_gauge gauge\n";
  List.iter
    (fun (name, v) ->
      Buffer.add_string b
        (Printf.sprintf "limpetmlir_gauge{name=\"%s\"} %s\n" (prom_label name)
           (prom_value v)))
    s.Tracer.gauges;
  Option.iter (prom_health b) health;
  Option.iter (prom_tissue b) tissue;
  Option.iter (prom_build b) build;
  Option.iter (prom_checkpoint b) checkpoint;
  Option.iter (prom_progress b) progress;
  Buffer.contents b

(* -- Prometheus exposition validator ---------------------------------- *)

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_metric_name (s : string) : bool =
  s <> ""
  && (is_name_start s.[0] || s.[0] = ':')
  && String.for_all (fun c -> is_name_char c || c = ':') s

let valid_label_name (s : string) : bool =
  s <> "" && is_name_start s.[0] && String.for_all is_name_char s

(* Sample value token: canonical nonfinite (NaN / +Inf / -Inf) or a
   plain decimal float.  Rejects the lowercase [nan]/[inf] that [%g]
   prints — the regression {!prom_value} guards against. *)
let valid_value (s : string) : bool =
  match s with
  | "NaN" | "+Inf" | "-Inf" | "Inf" -> true
  | "" -> false
  | _ ->
      String.for_all
        (fun c ->
          (c >= '0' && c <= '9')
          || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E')
        s
      && (match float_of_string_opt s with Some _ -> true | None -> false)

(* Parse [{label="value",...}]; returns the index after the closing
   brace or an error. *)
let parse_labels (line : string) (start : int) : (int, string) result =
  let n = String.length line in
  let rec labels i =
    (* label name *)
    let j = ref i in
    while !j < n && is_name_char line.[!j] do incr j done;
    if not (valid_label_name (String.sub line i (!j - i))) then
      Error "bad label name"
    else if !j >= n || line.[!j] <> '=' then Error "expected '=' after label"
    else if !j + 1 >= n || line.[!j + 1] <> '"' then
      Error "label value must be quoted"
    else value (!j + 2)
  and value i =
    (* inside quotes: backslash may only escape a backslash, a double
       quote or [n] *)
    if i >= n then Error "unterminated label value"
    else
      match line.[i] with
      | '"' -> after_value (i + 1)
      | '\\' ->
          if i + 1 < n && (line.[i + 1] = '\\' || line.[i + 1] = '"'
                          || line.[i + 1] = 'n')
          then value (i + 2)
          else Error "bad escape in label value"
      | '\n' -> Error "raw newline in label value"
      | _ -> value (i + 1)
  and after_value i =
    if i >= n then Error "unterminated label set"
    else
      match line.[i] with
      | ',' -> labels (i + 1)
      | '}' -> Ok (i + 1)
      | _ -> Error "expected ',' or '}' after label value"
  in
  if start < n && line.[start] = '}' then Ok (start + 1) else labels start

(** Validate a Prometheus text exposition as produced by {!prometheus}
    (mirrors {!validate_chrome}; used by the round-trip tests and the CI
    serve smoke).  Checks, line by line: [# HELP]/[# TYPE] come in order
    and at most once per family, metric names match
    [[a-zA-Z_:][a-zA-Z0-9_:]*], label names match
    [[a-zA-Z_][a-zA-Z0-9_]*], label values only use the three legal
    escapes, sample values are decimal floats or canonical
    [NaN]/[+Inf]/[-Inf], an optional integer timestamp, and samples of a
    family are not interleaved with other families.  [Ok n] returns the
    number of sample lines. *)
let validate_prometheus (text : string) : (int, string) result =
  let ( let* ) r f = Result.bind r f in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let* lines =
    if text = "" then Ok []
    else if text.[String.length text - 1] <> '\n' then
      Error "missing trailing newline"
    else Ok (String.split_on_char '\n' (String.sub text 0 (String.length text - 1)))
  in
  (* family state: name of the family currently open for samples, plus
     the set of families already closed (to reject interleaving). *)
  let closed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let helped : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let current = ref None in
  let nsamples = ref 0 in
  let close () =
    match !current with
    | Some f ->
        Hashtbl.replace closed f ();
        current := None
    | None -> ()
  in
  let open_family lineno f =
    match !current with
    | Some g when g = f -> Ok ()
    | _ ->
        if Hashtbl.mem closed f then
          err lineno (Printf.sprintf "family %s interleaved" f)
        else begin
          close ();
          current := Some f;
          Ok ()
        end
  in
  let meta_line lineno seen kind rest =
    (* ["# HELP name text"] / ["# TYPE name kind"] *)
    match String.index_opt rest ' ' with
    | None -> err lineno (Printf.sprintf "# %s missing metric name" kind)
    | Some sp ->
        let name = String.sub rest 0 sp in
        if not (valid_metric_name name) then
          err lineno (Printf.sprintf "bad metric name %S" name)
        else if Hashtbl.mem seen name then
          err lineno (Printf.sprintf "duplicate # %s for %s" kind name)
        else begin
          Hashtbl.replace seen name ();
          let* () =
            if kind = "TYPE" then
              if not (Hashtbl.mem helped name) then
                err lineno (Printf.sprintf "# TYPE %s without # HELP" name)
              else
                match String.sub rest (sp + 1) (String.length rest - sp - 1) with
                | "counter" | "gauge" | "histogram" | "summary" | "untyped" ->
                    Ok ()
                | t -> err lineno (Printf.sprintf "bad metric type %S" t)
            else Ok ()
          in
          open_family lineno name
        end
  in
  let sample_line lineno line =
    let n = String.length line in
    let j = ref 0 in
    while !j < n && (is_name_char line.[!j] || line.[!j] = ':') do incr j done;
    let name = String.sub line 0 !j in
    if not (valid_metric_name name) then
      err lineno (Printf.sprintf "bad metric name %S" name)
    else
      let* () =
        if Hashtbl.mem typed name && not (Hashtbl.mem helped name) then
          err lineno (Printf.sprintf "sample for %s before its # HELP" name)
        else Ok ()
      in
      let* after_labels =
        if !j < n && line.[!j] = '{' then
          match parse_labels line (!j + 1) with
          | Ok k -> Ok k
          | Error m -> err lineno m
        else Ok !j
      in
      let rest =
        String.trim (String.sub line after_labels (n - after_labels))
      in
      let* () =
        match String.split_on_char ' ' rest with
        | [ v ] when valid_value v -> Ok ()
        | [ v; ts ] when valid_value v -> (
            match int_of_string_opt ts with
            | Some _ -> Ok ()
            | None -> err lineno (Printf.sprintf "bad timestamp %S" ts))
        | _ -> err lineno (Printf.sprintf "bad sample value %S" rest)
      in
      let* () = open_family lineno name in
      incr nsamples;
      Ok ()
  in
  let rec go lineno = function
    | [] -> Ok !nsamples
    | line :: rest ->
        let* () =
          if line = "" then Ok ()
          else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then
            meta_line lineno helped "HELP"
              (String.sub line 7 (String.length line - 7))
          else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then
            meta_line lineno typed "TYPE"
              (String.sub line 7 (String.length line - 7))
          else if String.length line >= 1 && line.[0] = '#' then Ok ()
            (* plain comment *)
          else sample_line lineno line
        in
        go (lineno + 1) rest
  in
  go 1 lines
