(** Trace exporters over a {!Tracer.snapshot}: Chrome trace-event JSON
    (Perfetto / chrome://tracing), a human-readable summary table, and
    Prometheus-style text. *)

type span_stat = {
  ss_name : string;
  ss_count : int;
  ss_total_us : float;
  ss_min_us : float;
  ss_max_us : float;
}

val summarize : Tracer.snapshot -> span_stat list
(** Per-name duration statistics over matched Begin/End pairs, sorted by
    total time descending. *)

val chrome : Tracer.snapshot -> string
(** Chrome trace-event JSON: ["B"]/["E"] span pairs with [tid] = Domain
    id (one track per Domain), ["C"] counter events, ["M"] metadata
    naming the tracks. *)

val validate_chrome : string -> (int, string) result
(** Check a Chrome trace: valid JSON, span events complete, B/E balanced
    per tid, per-tid timestamps monotonic.  [Ok n] returns the number of
    span events. *)

val summary : ?health:Health.snapshot -> Tracer.snapshot -> string
(** Human-readable table: spans (count/total/mean/min/max), counters,
    gauges, dropped-event note, plus a per-variable health section when
    [?health] is given. *)

val prom_value : float -> string
(** Render a sample value for the text exposition format: canonical
    [NaN] / [+Inf] / [-Inf] for nonfinite values (never the lowercase
    spellings [%g] would print), [%g] otherwise. *)

type tissue_stats = {
  tt_model : string;
  tt_cells : int;  (** tissue size (real cells) *)
  tt_activated : int;  (** cells whose upstroke was detected *)
  tt_reactivated : int;  (** cells re-activated after full repolarization *)
  tt_block_trips : int;  (** conduction-block detector trips *)
  tt_cv : float option;  (** measured conduction velocity, cm/ms *)
}
(** Tissue-scale counters filled in by the monodomain engine
    ({!Tissue.Monodomain.stats}) and rendered by {!prometheus} as the
    [limpetmlir_tissue_*] families. *)

val prometheus :
  ?health:Health.snapshot -> ?tissue:tissue_stats -> Tracer.snapshot -> string
(** Prometheus text exposition: span totals and counts, counters,
    gauges, and — when [?health] is given — the
    [limpetmlir_health_*] metric families (steps sampled, per-variable
    sample/NaN/Inf/range counters, min/mean/max state gauges, tripped
    and unhealthy flags).  [?tissue] appends the [limpetmlir_tissue_*]
    families: cell count, activated cells, activation coverage,
    reactivated cells, conduction-block trips and measured conduction
    velocity (NaN until both probes activated). *)

val validate_prometheus : string -> (int, string) result
(** Check a Prometheus text exposition: [# HELP]/[# TYPE] pairing and
    uniqueness, metric-name and label-name charsets, label-value
    escaping (only backslash, double quote and [n]), decimal or
    canonical-nonfinite
    sample values, optional integer timestamps, no family interleaving,
    trailing newline.  [Ok n] returns the number of sample lines. *)
