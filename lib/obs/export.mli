(** Trace exporters over a {!Tracer.snapshot}: Chrome trace-event JSON
    (Perfetto / chrome://tracing), a human-readable summary table, and
    Prometheus-style text. *)

type span_stat = {
  ss_name : string;
  ss_count : int;
  ss_total_us : float;
  ss_min_us : float;
  ss_max_us : float;
}

type build_info = {
  bi_version : string;  (** limpetmlir release *)
  bi_ocaml : string;  (** [Sys.ocaml_version] *)
  bi_pipeline : string;  (** {!Codegen.Cache.pipeline_id} *)
  bi_toolchain : string;
      (** native C toolchain identity, or ["unavailable"] *)
}
(** Build identity rendered as the [limpetmlir_build_info] gauge and in
    the summary header.  Filled by the CLI (obs cannot see codegen /
    exec), rendered here — the same split as {!tissue_stats}. *)

type checkpoint_stats = {
  cp_last_step : int;  (** step of the newest checkpoint (-1 = none) *)
  cp_writes : int;
  cp_bytes : int;  (** cumulative serialized bytes *)
  cp_write_ms : float;  (** cumulative write (+ verify) milliseconds *)
  cp_verify_failures : int;  (** re-read digest verifications that failed *)
}
(** Flight-recorder counters filled by {!Recorder.stats} and rendered by
    {!prometheus} as the [limpetmlir_checkpoint_*] families. *)

type progress = {
  pg_model : string;
  pg_step : int;  (** steps completed *)
  pg_steps_total : int;  (** planned steps (0 = unbounded) *)
  pg_time_ms : float;  (** simulation clock *)
}
(** Step-progress gauges for a live run ([limpetmlir_sim_*]). *)

val summarize : Tracer.snapshot -> span_stat list
(** Per-name duration statistics over matched Begin/End pairs, sorted by
    total time descending. *)

val chrome : Tracer.snapshot -> string
(** Chrome trace-event JSON: ["B"]/["E"] span pairs with [tid] = Domain
    id (one track per Domain), ["C"] counter events, ["M"] metadata
    naming the tracks. *)

val validate_chrome : string -> (int, string) result
(** Check a Chrome trace: valid JSON, span events complete, B/E balanced
    per tid, per-tid timestamps monotonic.  [Ok n] returns the number of
    span events. *)

val summary :
  ?health:Health.snapshot -> ?build:build_info -> Tracer.snapshot -> string
(** Human-readable table: spans (count/total/mean/min/max), counters,
    gauges, dropped-event note, plus a per-variable health section when
    [?health] is given.  [?build] prepends the build-identity lines
    (version, OCaml, pass-pipeline id, native toolchain). *)

val prom_value : float -> string
(** Render a sample value for the text exposition format: canonical
    [NaN] / [+Inf] / [-Inf] for nonfinite values (never the lowercase
    spellings [%g] would print), [%g] otherwise. *)

type tissue_stats = {
  tt_model : string;
  tt_cells : int;  (** tissue size (real cells) *)
  tt_activated : int;  (** cells whose upstroke was detected *)
  tt_reactivated : int;  (** cells re-activated after full repolarization *)
  tt_block_trips : int;  (** conduction-block detector trips *)
  tt_cv : float option;  (** measured conduction velocity, cm/ms *)
}
(** Tissue-scale counters filled in by the monodomain engine
    ({!Tissue.Monodomain.stats}) and rendered by {!prometheus} as the
    [limpetmlir_tissue_*] families. *)

val prometheus :
  ?health:Health.snapshot ->
  ?tissue:tissue_stats ->
  ?build:build_info ->
  ?checkpoint:checkpoint_stats ->
  ?progress:progress ->
  Tracer.snapshot ->
  string
(** Prometheus text exposition: span totals and counts, counters,
    gauges, and — when [?health] is given — the
    [limpetmlir_health_*] metric families (steps sampled, per-variable
    sample/NaN/Inf/range counters, min/mean/max state gauges, tripped
    and unhealthy flags).  [?tissue] appends the [limpetmlir_tissue_*]
    families: cell count, activated cells, activation coverage,
    reactivated cells, conduction-block trips and measured conduction
    velocity (NaN until both probes activated).  [?build] appends the
    [limpetmlir_build_info] gauge (constant 1, identity in the labels),
    [?checkpoint] the [limpetmlir_checkpoint_*] flight-recorder
    families, and [?progress] the [limpetmlir_sim_*] step-progress
    gauges.  Everything emitted passes {!validate_prometheus}. *)

val validate_prometheus : string -> (int, string) result
(** Check a Prometheus text exposition: [# HELP]/[# TYPE] pairing and
    uniqueness, metric-name and label-name charsets, label-value
    escaping (only backslash, double quote and [n]), decimal or
    canonical-nonfinite
    sample values, optional integer timestamps, no family interleaving,
    trailing newline.  [Ok n] returns the number of sample lines. *)
