(** Numerical-health monitoring: streaming per-state-variable reducers
    and NaN/divergence watchdogs over the driver's state buffers.

    The ionic models this tree generates code for are numerically
    delicate — Rush–Larsen and Sundnes gates must stay inside [0, 1],
    Markov occupancies are explicitly clamped, and a single NaN entering
    a LUT index silently poisons every cell it touches.  This module
    watches the *state*, where {!Tracer} watches the *time*:

    - {b streaming reducers}: per monitored variable, min / max / mean
      (sum + count over finite samples), NaN and ±Inf counts, and
      range-violation counts (gates outside [0, 1], the membrane
      potential outside a configurable window);
    - {b engine-independent}: samples are taken straight from the
      simulation state buffer (any of the three layouts), so every
      execution engine is covered by the same code and sampling can
      never change a result bit — reducers only read;
    - {b lock-free per-Domain accumulators}: each Domain accumulates
      into its own cells (reached through domain-local storage, the
      {!Tracer} ring design) and the cells merge only at {!snapshot};
      the parallel compute stage never contends to stay healthy;
    - {b near-zero cost when off}: the sampling gate ({!due}) is one
      atomic flag load plus a modulo — callers skip everything else;
    - {b trip policies}: the first violation per (variable, reason)
      becomes a {e trip} carrying variable / cell / step / value.
      Under [Warn] each trip is reported once through the warn sink
      (the driver routes this through [Easyml.Diag]); under [Abort],
      hard trips (NaN, ±Inf, membrane-potential range) raise
      {!Tripped} with a structured report naming model, variable, cell
      and step.  Gate-range wiggle only ever warns: it is a fidelity
      signal, not a poisoned run. *)

(* Minimal mirror of [Runtime.Layout.t]: obs sits below runtime in the
   library stack, so the driver translates its layout into this. *)
type layout =
  | Cell_major  (** AoS: [cell*nvars + var] *)
  | Var_major  (** SoA: [var*ncells_pad + cell] *)
  | Blocked of int  (** AoSoA with block size [w] *)

type policy = Warn | Abort

type reason = Nan | Inf | Gate_range | Vm_range | Conduction_block

let reason_name = function
  | Nan -> "nan"
  | Inf -> "inf"
  | Gate_range -> "gate-range"
  | Vm_range -> "vm-range"
  | Conduction_block -> "conduction-block"

(* NaN and Inf poison results; a configured membrane-potential window is
   an explicit divergence watchdog; a conduction block means the tissue
   simulation failed its purpose (the wavefront never left the stimulus
   site).  Gate excursions are only warned. *)
let hard_reason = function
  | Nan | Inf | Vm_range | Conduction_block -> true
  | Gate_range -> false

type config = {
  stride : int;  (** sample every [stride]-th step *)
  vm_lo : float;  (** membrane-potential watchdog window, mV *)
  vm_hi : float;
  policy : policy;
  max_trips : int;  (** distinct trips retained for the report *)
}

let default_config =
  { stride = 16; vm_lo = -200.0; vm_hi = 200.0; policy = Warn; max_trips = 16 }

type var_spec = {
  v_name : string;
  v_slot : int;  (** slot in the state buffer *)
  v_gate : bool;  (** occupancy/gate semantics: must stay in [0, 1] *)
}

type trip = {
  t_var : string;
  t_reason : reason;
  t_cell : int;
  t_step : int;
  t_value : float;
}

(* Per-Domain accumulator for one monitored variable.  Only the owning
   Domain writes it; merges happen at snapshot time while the parallel
   region is quiescent (same contract as the tracer rings). *)
type acc = {
  mutable a_n : int;  (** finite samples *)
  mutable a_sum : float;
  mutable a_min : float;  (** +inf until the first finite sample *)
  mutable a_max : float;  (** -inf until the first finite sample *)
  mutable a_nan : int;
  mutable a_inf : int;
  mutable a_range : int;
  (* first-detection latches: after the first offence of a reason this
     Domain stops offering trips for it, so the (mutex-guarded) trip
     list is touched a bounded number of times per run *)
  mutable a_seen_nan : bool;
  mutable a_seen_inf : bool;
  mutable a_seen_range : bool;
}

let fresh_acc () =
  {
    a_n = 0;
    a_sum = 0.0;
    a_min = Float.infinity;
    a_max = Float.neg_infinity;
    a_nan = 0;
    a_inf = 0;
    a_range = 0;
    a_seen_nan = false;
    a_seen_inf = false;
    a_seen_range = false;
  }

type t = {
  h_id : int;
  h_model : string;
  h_cfg : config;
  h_vars : var_spec array;
  h_layout : layout;
  h_nvars : int;
  h_ncells_pad : int;
  h_on : bool Atomic.t;
  h_tripped : bool Atomic.t;  (** any trip recorded *)
  h_unhealthy : bool Atomic.t;  (** any {e hard} trip — the /healthz state *)
  h_lock : Mutex.t;
  mutable h_trips : trip list;  (** newest first, deduped by (var, reason) *)
  mutable h_unreported : trip list;  (** not yet pushed through {!enforce} *)
  h_warn : string -> unit;
  mutable h_steps : int;  (** sampled steps (bumped by {!note_sampled}) *)
}

(* -- per-Domain accumulator registry ---------------------------------- *)

let next_id = Atomic.make 0

(* All accumulator arrays ever handed out, tagged with their instance id,
   so snapshot can merge cells of Domains that no longer run. *)
let reg_lock = Mutex.create ()
let registered : (int * acc array) list ref = ref []

let table_key : (int, acc array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

(* This Domain's accumulators for instance [h] (allocated and registered
   on first use; the [+ 1] cell is the membrane-potential watchdog). *)
let accs_for (h : t) : acc array =
  let tbl = Domain.DLS.get table_key in
  match Hashtbl.find_opt tbl h.h_id with
  | Some a -> a
  | None ->
      let a =
        Array.init (Array.length h.h_vars + 1) (fun _ -> fresh_acc ())
      in
      Hashtbl.add tbl h.h_id a;
      Mutex.lock reg_lock;
      registered := (h.h_id, a) :: !registered;
      Mutex.unlock reg_lock;
      a

(* -- construction ----------------------------------------------------- *)

let create ?(cfg = default_config) ~(model : string) ~(layout : layout)
    ~(nvars : int) ~(ncells_pad : int) ~(vars : var_spec list)
    ?(warn = fun msg -> Printf.eprintf "%s\n%!" msg) () : t =
  if cfg.stride <= 0 then invalid_arg "Health.create: stride must be > 0";
  if cfg.max_trips <= 0 then invalid_arg "Health.create: max_trips must be > 0";
  {
    h_id = Atomic.fetch_and_add next_id 1;
    h_model = model;
    h_cfg = cfg;
    h_vars = Array.of_list vars;
    h_layout = layout;
    h_nvars = max 1 nvars;
    h_ncells_pad = ncells_pad;
    h_on = Atomic.make true;
    h_tripped = Atomic.make false;
    h_unhealthy = Atomic.make false;
    h_lock = Mutex.create ();
    h_trips = [];
    h_unreported = [];
    h_warn = warn;
    h_steps = 0;
  }

let set_enabled (h : t) (b : bool) : unit = Atomic.set h.h_on b
let enabled (h : t) : bool = Atomic.get h.h_on

(* The sampling gate the driver hot path checks: one atomic load and a
   modulo when enabled, one atomic load when not. *)
let due (h : t) ~(step : int) : bool =
  Atomic.get h.h_on && step mod h.h_cfg.stride = 0

let tripped (h : t) : bool = Atomic.get h.h_tripped
let unhealthy (h : t) : bool = Atomic.get h.h_unhealthy

(* -- recording -------------------------------------------------------- *)

let index (l : layout) ~(nvars : int) ~(ncells_pad : int) ~(cell : int)
    ~(var : int) : int =
  match l with
  | Cell_major -> (cell * nvars) + var
  | Var_major -> (var * ncells_pad) + cell
  | Blocked w -> (cell / w * nvars * w) + (var * w) + (cell mod w)

(* Record the first offence per (var, reason): dedup + bounded retention
   under the instance mutex — reached at most once per (Domain, var,
   reason) thanks to the per-acc latches, so contention is nil. *)
let offer_trip (h : t) ~(var : string) ~(reason : reason) ~(cell : int)
    ~(step : int) ~(value : float) : unit =
  Atomic.set h.h_tripped true;
  if hard_reason reason then Atomic.set h.h_unhealthy true;
  Mutex.lock h.h_lock;
  let dup =
    List.exists (fun t -> t.t_var = var && t.t_reason = reason) h.h_trips
  in
  if (not dup) && List.length h.h_trips < h.h_cfg.max_trips then begin
    let t =
      { t_var = var; t_reason = reason; t_cell = cell; t_step = step;
        t_value = value }
    in
    h.h_trips <- t :: h.h_trips;
    h.h_unreported <- t :: h.h_unreported
  end;
  Mutex.unlock h.h_lock

let observe (h : t) (a : acc) ~(name : string) ~(gate : bool) ~(cell : int)
    ~(step : int) (x : float) : unit =
  if Float.is_nan x then begin
    a.a_nan <- a.a_nan + 1;
    if not a.a_seen_nan then begin
      a.a_seen_nan <- true;
      offer_trip h ~var:name ~reason:Nan ~cell ~step ~value:x
    end
  end
  else if x = Float.infinity || x = Float.neg_infinity then begin
    a.a_inf <- a.a_inf + 1;
    if not a.a_seen_inf then begin
      a.a_seen_inf <- true;
      offer_trip h ~var:name ~reason:Inf ~cell ~step ~value:x
    end
  end
  else begin
    a.a_n <- a.a_n + 1;
    a.a_sum <- a.a_sum +. x;
    if x < a.a_min then a.a_min <- x;
    if x > a.a_max then a.a_max <- x;
    if gate && (x < 0.0 || x > 1.0) then begin
      a.a_range <- a.a_range + 1;
      if not a.a_seen_range then begin
        a.a_seen_range <- true;
        offer_trip h ~var:name ~reason:Gate_range ~cell ~step ~value:x
      end
    end
  end

(** Reduce cells [lo, hi) of the state buffer [sv] (and, when given, the
    membrane-potential buffer [vm], indexed plainly by cell) into this
    Domain's accumulators.  Reads only — never touches simulation state.
    Call from the Domain that owns the chunk. *)
let sample_chunk (h : t) ~(sv : floatarray) ~(vm : floatarray option)
    ~(lo : int) ~(hi : int) ~(step : int) : unit =
  if Atomic.get h.h_on && hi > lo then begin
    let accs = accs_for h in
    let nvars = h.h_nvars and ncells_pad = h.h_ncells_pad in
    Array.iteri
      (fun i v ->
        let a = accs.(i) in
        for cell = lo to hi - 1 do
          observe h a ~name:v.v_name ~gate:v.v_gate ~cell ~step
            (Float.Array.get sv
               (index h.h_layout ~nvars ~ncells_pad ~cell ~var:v.v_slot))
        done)
      h.h_vars;
    match vm with
    | None -> ()
    | Some buf ->
        let a = accs.(Array.length h.h_vars) in
        for cell = lo to hi - 1 do
          let x = Float.Array.get buf cell in
          observe h a ~name:"Vm" ~gate:false ~cell ~step x;
          if
            (not (Float.is_nan x))
            && Float.abs x <> Float.infinity
            && (x < h.h_cfg.vm_lo || x > h.h_cfg.vm_hi)
          then begin
            a.a_range <- a.a_range + 1;
            if not a.a_seen_range then begin
              a.a_seen_range <- true;
              offer_trip h ~var:"Vm" ~reason:Vm_range ~cell ~step ~value:x
            end
          end
        done
  end

let note_sampled (h : t) : unit = h.h_steps <- h.h_steps + 1

(** Conduction-block detector hook for tissue-scale simulations: the
    monodomain engine calls this when its plausibility window expired
    with no activation past the stimulus site.  Records one
    [Conduction_block] trip against [Vm] (deduped like every other
    reason) and flips the unhealthy flag — the block surfaces through
    {!enforce}, {!snapshot} and /healthz exactly like a NaN would. *)
let note_block (h : t) ~(cell : int) ~(step : int) : unit =
  if Atomic.get h.h_on then
    offer_trip h ~var:"Vm" ~reason:Conduction_block ~cell ~step
      ~value:Float.nan

(* -- policy ----------------------------------------------------------- *)

exception Tripped of string

let report (h : t) (t : trip) : string =
  Printf.sprintf
    "health watchdog tripped: model=%s variable=%s cell=%d step=%d value=%g \
     reason=%s"
    h.h_model t.t_var t.t_cell t.t_step t.t_value (reason_name t.t_reason)

(** Apply the trip policy to every not-yet-reported trip.  [Warn] pushes
    each through the warn sink (once per (variable, reason)); [Abort]
    does the same for soft trips but raises {!Tripped} on the first hard
    one (NaN / Inf / membrane-potential range).  Call after the parallel
    region returned — never from inside a worker Domain. *)
let enforce (h : t) : unit =
  if Atomic.get h.h_tripped then begin
    Mutex.lock h.h_lock;
    let pending = List.rev h.h_unreported in
    h.h_unreported <- [];
    Mutex.unlock h.h_lock;
    List.iter
      (fun t ->
        match h.h_cfg.policy with
        | Abort when hard_reason t.t_reason -> raise (Tripped (report h t))
        | Warn | Abort -> h.h_warn (report h t))
      pending
  end

(* -- snapshot --------------------------------------------------------- *)

type var_stat = {
  vs_name : string;
  vs_gate : bool;
  vs_samples : int;  (** finite samples *)
  vs_min : float;  (** NaN when no finite sample was seen *)
  vs_max : float;
  vs_mean : float;
  vs_nan : int;
  vs_inf : int;
  vs_range : int;  (** gate-clamp or membrane-window violations *)
}

type snapshot = {
  hs_model : string;
  hs_steps_sampled : int;
  hs_tripped : bool;
  hs_unhealthy : bool;
  hs_vars : var_stat list;  (** monitored variables, then ["Vm"] *)
  hs_trips : trip list;  (** oldest first *)
}

(** Merge every Domain's accumulators.  Call while no Domain is sampling
    (after the parallel region returned). *)
let snapshot (h : t) : snapshot =
  Mutex.lock reg_lock;
  let arrays =
    List.filter_map
      (fun (id, a) -> if id = h.h_id then Some a else None)
      !registered
  in
  Mutex.unlock reg_lock;
  let nmon = Array.length h.h_vars + 1 in
  let merged = Array.init nmon (fun _ -> fresh_acc ()) in
  List.iter
    (fun arr ->
      Array.iteri
        (fun i (a : acc) ->
          let m = merged.(i) in
          m.a_n <- m.a_n + a.a_n;
          m.a_sum <- m.a_sum +. a.a_sum;
          if a.a_min < m.a_min then m.a_min <- a.a_min;
          if a.a_max > m.a_max then m.a_max <- a.a_max;
          m.a_nan <- m.a_nan + a.a_nan;
          m.a_inf <- m.a_inf + a.a_inf;
          m.a_range <- m.a_range + a.a_range)
        arr)
    arrays;
  let stat name gate (a : acc) =
    {
      vs_name = name;
      vs_gate = gate;
      vs_samples = a.a_n;
      vs_min = (if a.a_n = 0 then Float.nan else a.a_min);
      vs_max = (if a.a_n = 0 then Float.nan else a.a_max);
      vs_mean = (if a.a_n = 0 then Float.nan else a.a_sum /. float_of_int a.a_n);
      vs_nan = a.a_nan;
      vs_inf = a.a_inf;
      vs_range = a.a_range;
    }
  in
  let vars =
    List.mapi
      (fun i (v : var_spec) -> stat v.v_name v.v_gate merged.(i))
      (Array.to_list h.h_vars)
    @ [ stat "Vm" false merged.(nmon - 1) ]
  in
  Mutex.lock h.h_lock;
  let trips = List.rev h.h_trips in
  Mutex.unlock h.h_lock;
  {
    hs_model = h.h_model;
    hs_steps_sampled = h.h_steps;
    hs_tripped = Atomic.get h.h_tripped;
    hs_unhealthy = Atomic.get h.h_unhealthy;
    hs_vars = vars;
    hs_trips = trips;
  }

(** Total (NaN, Inf, range-violation) counts across every variable. *)
let totals (s : snapshot) : int * int * int =
  List.fold_left
    (fun (n, i, r) vs -> (n + vs.vs_nan, i + vs.vs_inf, r + vs.vs_range))
    (0, 0, 0) s.hs_vars
