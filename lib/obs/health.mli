(** Numerical-health monitoring: streaming per-state-variable reducers
    (min/max/mean, NaN/Inf counts, gate clamp-violation counters, a
    configurable membrane-potential watchdog) computed straight from
    simulation state buffers — engine-independent, lock-free per-Domain
    accumulators merged at {!snapshot} (the {!Tracer} design), one
    atomic load per probe when disabled.  Reducers only read: sampled
    runs are bitwise identical to unsampled ones. *)

type layout =
  | Cell_major  (** AoS: [cell*nvars + var] *)
  | Var_major  (** SoA: [var*ncells_pad + cell] *)
  | Blocked of int  (** AoSoA with block size [w] *)

type policy =
  | Warn  (** report each trip once through the warn sink *)
  | Abort  (** raise {!Tripped} on hard trips (NaN / Inf / Vm range) *)

type reason = Nan | Inf | Gate_range | Vm_range | Conduction_block

val reason_name : reason -> string

type config = {
  stride : int;  (** sample every [stride]-th step *)
  vm_lo : float;  (** membrane-potential watchdog window, mV *)
  vm_hi : float;
  policy : policy;
  max_trips : int;  (** distinct trips retained for the report *)
}

val default_config : config
(** stride 16, Vm window [-200, 200] mV, [Warn], 16 trips. *)

type var_spec = {
  v_name : string;
  v_slot : int;  (** slot in the state buffer *)
  v_gate : bool;  (** occupancy/gate semantics: must stay in [0, 1] *)
}

type trip = {
  t_var : string;
  t_reason : reason;
  t_cell : int;
  t_step : int;
  t_value : float;
}

type t

val create :
  ?cfg:config ->
  model:string ->
  layout:layout ->
  nvars:int ->
  ncells_pad:int ->
  vars:var_spec list ->
  ?warn:(string -> unit) ->
  unit ->
  t
(** A monitor for one simulation's state buffer.  [vars] lists the
    monitored state variables (the membrane potential is watched
    implicitly whenever {!sample_chunk} receives [?vm]).  [warn]
    receives one formatted report per (variable, reason) trip; the
    default prints to stderr.
    @raise Invalid_argument on non-positive [stride] or [max_trips]. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val due : t -> step:int -> bool
(** Whether [step] should be sampled: one atomic flag load (plus a
    modulo on the enabled path) — cheap enough for the per-step hot
    path. *)

val sample_chunk :
  t ->
  sv:floatarray ->
  vm:floatarray option ->
  lo:int ->
  hi:int ->
  step:int ->
  unit
(** Reduce cells [lo, hi) of the state buffer into the calling Domain's
    accumulators (lock-free; [vm] is indexed plainly by cell).  Reads
    only — never touches simulation state. *)

val note_sampled : t -> unit
(** Count one sampled step (call once per sampled step, outside the
    parallel region). *)

val note_block : t -> cell:int -> step:int -> unit
(** Conduction-block detector hook (tissue simulations): record one
    [Conduction_block] trip against [Vm] — a {e hard} trip, so it flips
    {!unhealthy} and aborts under the [Abort] policy.  Deduped like
    every other (variable, reason) pair; no-op while disabled. *)

exception Tripped of string

val enforce : t -> unit
(** Apply the trip policy to every not-yet-reported trip: [Warn] pushes
    each through the warn sink; [Abort] raises {!Tripped} on the first
    hard trip (gate-range excursions only ever warn).  Call after the
    parallel region returned.
    @raise Tripped under [Abort] with a structured report naming model,
    variable, cell and step. *)

val tripped : t -> bool
(** Any trip recorded (atomic — safe from any thread). *)

val unhealthy : t -> bool
(** Any {e hard} trip recorded (NaN / Inf / Vm range) — the [/healthz]
    state (atomic — safe from any thread). *)

val report : t -> trip -> string
(** Structured single-line report: model, variable, cell, step, value,
    reason. *)

type var_stat = {
  vs_name : string;
  vs_gate : bool;
  vs_samples : int;  (** finite samples *)
  vs_min : float;  (** NaN when no finite sample was seen *)
  vs_max : float;
  vs_mean : float;
  vs_nan : int;
  vs_inf : int;
  vs_range : int;  (** gate-clamp or membrane-window violations *)
}

type snapshot = {
  hs_model : string;
  hs_steps_sampled : int;
  hs_tripped : bool;
  hs_unhealthy : bool;
  hs_vars : var_stat list;  (** monitored variables, then ["Vm"] *)
  hs_trips : trip list;  (** oldest first *)
}

val snapshot : t -> snapshot
(** Merge every Domain's accumulators.  Call while no Domain is
    sampling. *)

val totals : snapshot -> int * int * int
(** Total (NaN, Inf, range-violation) counts across every variable. *)
