(** Minimal stdlib-only HTTP/1.1 server for the live observability
    endpoints ([/metrics], [/healthz]).

    One dedicated system thread runs a non-blocking accept loop and
    handles connections sequentially — a metrics scrape is a handful of
    small requests per minute, so a connection pool would be pure
    weight.  The handler runs on the server thread: it must only read
    data published for it (atomics / immutable snapshots), never poke
    simulation state.  No third-party dependency: sockets come from
    [Unix], the thread from [Thread]. *)

type response = { status : int; content_type : string; body : string }

type t = {
  sock : Unix.file_descr;
  s_port : int;
  stop : bool Atomic.t;
  mutable thread : Thread.t option;
}

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let write_all (fd : Unix.file_descr) (s : string) : unit =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

(* Every response carries Content-Length (so [curl -I] and keep-alive
   clients can frame it); a HEAD response sends the headers — including
   the Content-Length the GET body would have — but no body bytes, per
   RFC 9110 §9.3.2. *)
let respond ?(head = false) (fd : Unix.file_descr) (r : response) : unit =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
        Connection: close\r\n\r\n%s"
       r.status (status_text r.status) r.content_type
       (String.length r.body)
       (if head then "" else r.body))

(* Read the request head (first line is all we route on); bounded so a
   hostile client cannot grow the buffer. *)
let read_request_line (fd : Unix.file_descr) : string option =
  let buf = Bytes.create 1024 in
  let acc = Buffer.create 256 in
  let rec go () =
    if Buffer.length acc > 8192 then None
    else
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 | (exception Unix.Unix_error (_, _, _)) ->
          if Buffer.length acc > 0 then Some (Buffer.contents acc) else None
      | n ->
          Buffer.add_subbytes acc buf 0 n;
          let s = Buffer.contents acc in
          (* stop as soon as the request line is complete *)
          if String.index_opt s '\n' <> None then Some s else go ()
  in
  match go () with
  | None -> None
  | Some s -> (
      match String.index_opt s '\n' with
      | None -> Some s
      | Some i -> Some (String.trim (String.sub s 0 i)))

let handle_conn (handler : string -> response option) (fd : Unix.file_descr) :
    unit =
  (* a stuck client must not wedge the server thread *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0 with _ -> ());
  match read_request_line fd with
  | None -> ()
  | Some line -> (
      match String.split_on_char ' ' line with
      | meth :: path :: _ ->
          let head = meth = "HEAD" in
          let resp =
            if meth <> "GET" && not head then
              { status = 405; content_type = "text/plain";
                body = "method not allowed\n" }
            else begin
              match handler path with
              | Some r -> r
              | None ->
                  { status = 404; content_type = "text/plain";
                    body = "not found\n" }
              | exception _ ->
                  { status = 500; content_type = "text/plain";
                    body = "internal error\n" }
            end
          in
          (try respond ~head fd resp with _ -> ())
      | _ -> (
          try
            respond fd
              { status = 400; content_type = "text/plain";
                body = "bad request\n" }
          with _ -> ()))

let accept_loop (t : t) (handler : string -> response option) () : unit =
  while not (Atomic.get t.stop) do
    match Unix.accept t.sock with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        Thread.delay 0.02
    | exception Unix.Unix_error (_, _, _) ->
        if not (Atomic.get t.stop) then Thread.delay 0.05
    | fd, _ ->
        (try Unix.clear_nonblock fd with _ -> ());
        (try handle_conn handler fd with _ -> ());
        (try Unix.close fd with _ -> ())
  done

(** [start ~port handler] binds [addr:port] (port 0 picks an ephemeral
    port — read it back with {!port}) and serves [GET] requests:
    [handler path] returns the response, [None] becomes a 404.  Raises
    [Unix.Unix_error] when the address cannot be bound. *)
let start ?(addr = "127.0.0.1") ~(port : int)
    (handler : string -> response option) : t =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen sock 16;
     Unix.set_nonblock sock
   with e ->
     (try Unix.close sock with _ -> ());
     raise e);
  let s_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t = { sock; s_port; stop = Atomic.make false; thread = None } in
  t.thread <- Some (Thread.create (accept_loop t handler) ());
  t

let port (t : t) : int = t.s_port

(** Stop accepting, join the server thread and close the socket.
    Idempotent. *)
let stop (t : t) : unit =
  if not (Atomic.exchange t.stop true) then begin
    (match t.thread with None -> () | Some th -> Thread.join th);
    try Unix.close t.sock with _ -> ()
  end
