(** Minimal stdlib-only HTTP/1.1 server (one dedicated thread,
    sequential request handling) for the live observability endpoints.
    The handler runs on the server thread: it must only read data
    published for it (atomics / immutable snapshots). *)

type response = { status : int; content_type : string; body : string }

type t

val start : ?addr:string -> port:int -> (string -> response option) -> t
(** [start ~port handler] binds [addr:port] (default [127.0.0.1]; port 0
    picks an ephemeral port — read it back with {!port}) and serves
    [GET] and [HEAD] requests on a dedicated thread: [handler path]
    returns the response, [None] becomes a 404, a raising handler a 500,
    any other method a 405.  Every response carries [Content-Length];
    [HEAD] sends the same status and headers as the corresponding [GET]
    (including the [Content-Length] of the body it is not sending) with
    no body.  @raise Unix.Unix_error when the address cannot be
    bound. *)

val port : t -> int
(** The bound port (useful with [~port:0]). *)

val stop : t -> unit
(** Stop accepting, join the server thread, close the socket.
    Idempotent. *)
