(** Minimal JSON: a value type, a recursive-descent parser and a
    printer.  Just enough for the trace exporters and their round-trip
    tests — no dependency on an external JSON package. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* -- printing --------------------------------------------------------- *)

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number_to_string (x : float) : string =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let rec write (b : Buffer.t) (v : t) : unit =
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num x ->
      if Float.is_nan x || Float.is_integer (x /. 0.0) then
        (* NaN/inf are not JSON; record null like the bench harness does *)
        Buffer.add_string b "null"
      else Buffer.add_string b (number_to_string x)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b x)
        kvs;
      Buffer.add_char b '}'

let to_string (v : t) : string =
  let b = Buffer.create 1024 in
  write b v;
  Buffer.contents b

(* -- parsing ---------------------------------------------------------- *)

type cursor = { s : string; mutable pos : int }

let perr (c : cursor) fmt =
  Fmt.kstr (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" c.pos m))) fmt

let peek (c : cursor) : char option =
  if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance (c : cursor) : unit = c.pos <- c.pos + 1

let rec skip_ws (c : cursor) : unit =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect (c : cursor) (ch : char) : unit =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> perr c "expected %c, got %c" ch x
  | None -> perr c "expected %c, got end of input" ch

let parse_string_body (c : cursor) : string =
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> perr c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> perr c "unterminated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if c.pos + 4 > String.length c.s then
                  perr c "truncated \\u escape";
                let hex = String.sub c.s c.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> perr c "bad \\u escape %s" hex
                in
                c.pos <- c.pos + 4;
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else
                  (* non-ASCII escapes: UTF-8 encode (2/3 bytes suffice
                     for the BMP; surrogates are kept verbatim) *)
                  if code < 0x800 then begin
                    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char b
                      (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end
            | e -> perr c "bad escape \\%c" e);
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number (c : cursor) : float =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let sub = String.sub c.s start (c.pos - start) in
  match float_of_string_opt sub with
  | Some x -> x
  | None -> perr c "bad number %S" sub

let literal (c : cursor) (word : string) (v : t) : t =
  if
    c.pos + String.length word <= String.length c.s
    && String.sub c.s c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    v
  end
  else perr c "bad literal (expected %s)" word

let rec parse_value (c : cursor) : t =
  skip_ws c;
  match peek c with
  | None -> perr c "unexpected end of input"
  | Some '"' ->
      advance c;
      Str (parse_string_body c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let kvs = ref [] in
        let rec members () =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          kvs := (k, v) :: !kvs;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ()
          | Some '}' -> advance c
          | _ -> perr c "expected , or } in object"
        in
        members ();
        Obj (List.rev !kvs)
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        Arr []
      end
      else begin
        let xs = ref [] in
        let rec elements () =
          let v = parse_value c in
          xs := v :: !xs;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elements ()
          | Some ']' -> advance c
          | _ -> perr c "expected , or ] in array"
        in
        elements ();
        Arr (List.rev !xs)
      end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)

let parse (s : string) : (t, string) result =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos < String.length s then
        Error (Printf.sprintf "trailing garbage at %d" c.pos)
      else Ok v
  | exception Parse_error m -> Error m

let parse_exn (s : string) : t =
  match parse s with Ok v -> v | Error m -> raise (Parse_error m)

(* -- accessors -------------------------------------------------------- *)

let member (k : string) (v : t) : t option =
  match v with Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_list (v : t) : t list option =
  match v with Arr xs -> Some xs | _ -> None

let to_float (v : t) : float option =
  match v with Num x -> Some x | _ -> None

let to_str (v : t) : string option =
  match v with Str s -> Some s | _ -> None
