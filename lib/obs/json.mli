(** Minimal JSON value type, parser and printer — enough for the trace
    exporters and their round-trip tests, no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact JSON.  NaN and infinities print as [null] (they are not
    representable in JSON). *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val parse : string -> (t, string) result

val parse_exn : string -> t
(** @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** Object field lookup ([None] on non-objects and missing keys). *)

val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
