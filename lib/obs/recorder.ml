(** Flight recorder: deterministic checkpoints, crash dumps and run
    manifests.  See the interface for the format contract.

    Serialization is a line-oriented text format:

    {v
    limpetmlir-checkpoint v1
    step 12000
    time 4041800000000000
    meta model TenTusscher
    meta engine fused
    section sv 4096
    3ff0000000000000 8000000000000000 ... (8 tokens per line)
    section ext:Vm 512
    ...
    digest 0f8e...
    v}

    Floats are written as the 16 hex digits of their [Int64] bit
    pattern, so [-0.0], NaN payloads and subnormals round-trip exactly —
    the same canonicalization PR 6 uses for specialization cache keys.
    The trailing digest is MD5 over the step, the clock bits and every
    section's name + raw little-endian bit patterns; {!of_string}
    recomputes and compares it, so corruption and truncation surface as
    structured diagnostics rather than silently-wrong physics. *)

type section = { sec_name : string; sec_data : floatarray }

type checkpoint = {
  ck_meta : (string * string) list;
  ck_step : int;
  ck_time : float;
  ck_sections : section list;
}

let version = 1
let magic = "limpetmlir-checkpoint"

let meta (ck : checkpoint) (key : string) : string option =
  List.assoc_opt key ck.ck_meta

let set_meta (ck : checkpoint) (key : string) (v : string) : checkpoint =
  if List.mem_assoc key ck.ck_meta then
    {
      ck with
      ck_meta =
        List.map (fun (k, x) -> if k = key then (k, v) else (k, x)) ck.ck_meta;
    }
  else { ck with ck_meta = ck.ck_meta @ [ (key, v) ] }

(* -- digest ----------------------------------------------------------- *)

(* MD5 over exact bit patterns (metadata excluded: runs reaching the
   same state through different CLI spellings compare digest-equal). *)
let digest (ck : checkpoint) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "step";
  Buffer.add_char b '\000';
  Buffer.add_int64_le b (Int64.of_int ck.ck_step);
  Buffer.add_string b "time";
  Buffer.add_char b '\000';
  Buffer.add_int64_le b (Int64.bits_of_float ck.ck_time);
  List.iter
    (fun s ->
      Buffer.add_string b s.sec_name;
      Buffer.add_char b '\000';
      Float.Array.iter
        (fun v -> Buffer.add_int64_le b (Int64.bits_of_float v))
        s.sec_data)
    ck.ck_sections;
  Digest.to_hex (Digest.bytes (Buffer.to_bytes b))

(* -- serialization ---------------------------------------------------- *)

let hex_of_float (v : float) : string =
  Printf.sprintf "%016Lx" (Int64.bits_of_float v)

let float_of_hex (tok : string) : float option =
  if String.length tok <> 16 then None
  else
    match Int64.of_string_opt ("0x" ^ tok) with
    | Some bits -> Some (Int64.float_of_bits bits)
    | None -> None

let to_string (ck : checkpoint) : string =
  let b = Buffer.create 65536 in
  Buffer.add_string b (Printf.sprintf "%s v%d\n" magic version);
  Buffer.add_string b (Printf.sprintf "step %d\n" ck.ck_step);
  Buffer.add_string b
    (Printf.sprintf "time %016Lx\n" (Int64.bits_of_float ck.ck_time));
  List.iter
    (fun (k, v) ->
      if k = "" || String.contains k ' ' || String.contains k '\n' then
        invalid_arg "Recorder.to_string: meta keys must be non-empty, space-free";
      if String.contains v '\n' then
        invalid_arg "Recorder.to_string: meta values must be newline-free";
      Buffer.add_string b (Printf.sprintf "meta %s %s\n" k v))
    ck.ck_meta;
  List.iter
    (fun s ->
      let n = Float.Array.length s.sec_data in
      Buffer.add_string b (Printf.sprintf "section %s %d\n" s.sec_name n);
      for i = 0 to n - 1 do
        Buffer.add_string b (hex_of_float (Float.Array.get s.sec_data i));
        Buffer.add_char b (if i mod 8 = 7 || i = n - 1 then '\n' else ' ')
      done)
    ck.ck_sections;
  Buffer.add_string b (Printf.sprintf "digest %s\n" (digest ck));
  Buffer.contents b

let err ?(code = "checkpoint-format") fmt =
  Fmt.kstr
    (fun msg -> Error (Easyml.Diag.make ~sev:Easyml.Diag.Error ~code msg))
    fmt

let of_string (text : string) : (checkpoint, Easyml.Diag.t) result =
  let ( let* ) r f = Result.bind r f in
  let lines = String.split_on_char '\n' text in
  let* header, rest =
    match lines with
    | h :: rest -> Ok (h, rest)
    | [] -> err "empty checkpoint"
  in
  let* () =
    if header = Printf.sprintf "%s v%d" magic version then Ok ()
    else if
      String.length header >= String.length magic
      && String.sub header 0 (String.length magic) = magic
    then err "unsupported checkpoint version %S" header
    else err "not a checkpoint file (bad magic %S)" header
  in
  (* state threaded through the line walk *)
  let step = ref None
  and time = ref None
  and metas = ref []
  and sections = ref []
  and stored_digest = ref None in
  (* current section being filled *)
  let cur : (string * floatarray * int ref) option ref = ref None in
  let finish_section () =
    match !cur with
    | None -> Ok ()
    | Some (name, data, filled) ->
        if !filled <> Float.Array.length data then
          err "section %s truncated: %d of %d value(s)" name !filled
            (Float.Array.length data)
        else begin
          sections := { sec_name = name; sec_data = data } :: !sections;
          cur := None;
          Ok ()
        end
  in
  let rec go lineno = function
    | [] -> (
        let* () = finish_section () in
        match (!step, !time, !stored_digest) with
        | None, _, _ -> err "missing step line"
        | _, None, _ -> err "missing time line"
        | _, _, None -> err "truncated checkpoint: missing digest line"
        | Some step, Some time, Some stored ->
            let ck =
              {
                ck_meta = List.rev !metas;
                ck_step = step;
                ck_time = time;
                ck_sections = List.rev !sections;
              }
            in
            let actual = digest ck in
            if actual <> stored then
              err ~code:"checkpoint-digest"
                "content digest mismatch: file says %s, data hashes to %s"
                stored actual
            else Ok ck)
    | "" :: rest -> go (lineno + 1) rest
    | line :: rest -> (
        let* () =
          if !stored_digest <> None then
            err "line %d: content after the digest line" lineno
          else Ok ()
        in
        match (!cur, String.split_on_char ' ' line) with
        | Some (name, data, filled), toks ->
            (* inside a section: every token is one bit pattern *)
            let* () =
              List.fold_left
                (fun acc tok ->
                  let* () = acc in
                  if tok = "" then Ok ()
                  else
                    match float_of_hex tok with
                    | None ->
                        err "line %d: bad bit pattern %S in section %s" lineno
                          tok name
                    | Some v ->
                        if !filled >= Float.Array.length data then
                          err "line %d: section %s overflows its declared \
                               length %d"
                            lineno name (Float.Array.length data)
                        else begin
                          Float.Array.set data !filled v;
                          incr filled;
                          Ok ()
                        end)
                (Ok ()) toks
            in
            let* () =
              if !filled = Float.Array.length data then finish_section ()
              else Ok ()
            in
            go (lineno + 1) rest
        | None, [ "step"; n ] -> (
            match int_of_string_opt n with
            | Some n when n >= 0 ->
                step := Some n;
                go (lineno + 1) rest
            | _ -> err "line %d: bad step %S" lineno n)
        | None, [ "time"; tok ] -> (
            match float_of_hex tok with
            | Some t ->
                time := Some t;
                go (lineno + 1) rest
            | None -> err "line %d: bad time bit pattern %S" lineno tok)
        | None, "meta" :: k :: v ->
            metas := (k, String.concat " " v) :: !metas;
            go (lineno + 1) rest
        | None, [ "section"; name; n ] -> (
            match int_of_string_opt n with
            | Some n when n >= 0 ->
                if n = 0 then begin
                  sections :=
                    { sec_name = name; sec_data = Float.Array.create 0 }
                    :: !sections;
                  go (lineno + 1) rest
                end
                else begin
                  cur := Some (name, Float.Array.create n, ref 0);
                  go (lineno + 1) rest
                end
            | _ -> err "line %d: bad section length %S" lineno n)
        | None, [ "digest"; d ] ->
            stored_digest := Some d;
            go (lineno + 1) rest
        | None, _ -> err "line %d: unrecognized line %S" lineno line)
  in
  go 2 rest

(* -- file I/O --------------------------------------------------------- *)

let io_err fmt = err ~code:"checkpoint-io" fmt

let write ~(path : string) (ck : checkpoint) : int =
  let text = to_string ck in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc text;
  close_out oc;
  Sys.rename tmp path;
  String.length text

let read (path : string) : (checkpoint, Easyml.Diag.t) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> io_err "%s" msg
  | exception End_of_file -> io_err "%s: unexpected end of file" path
  | text -> of_string text

(* -- periodic writer -------------------------------------------------- *)

type writer = {
  w_dir : string;
  w_stride : int;
  w_keep : int;
  w_verify : bool;
  w_extra : (string * string) list;
  mutable w_files : string list;  (** newest first *)
  mutable w_last_step : int;
  mutable w_writes : int;
  mutable w_bytes : int;
  mutable w_ms : float;
  mutable w_verify_failures : int;
}

let rec mkdir_p (dir : string) : unit =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create_writer ?(keep = 3) ?(verify = true) ?(extra = []) ~(dir : string)
    ~(stride : int) () : writer =
  if stride <= 0 then invalid_arg "Recorder.create_writer: stride must be > 0";
  if keep <= 0 then invalid_arg "Recorder.create_writer: keep must be > 0";
  mkdir_p dir;
  {
    w_dir = dir;
    w_stride = stride;
    w_keep = keep;
    w_verify = verify;
    w_extra = extra;
    w_files = [];
    w_last_step = -1;
    w_writes = 0;
    w_bytes = 0;
    w_ms = 0.0;
    w_verify_failures = 0;
  }

let due (w : writer) ~(step : int) : bool = step > 0 && step mod w.w_stride = 0

let record (w : writer) (ck : checkpoint) : string =
  (* run-level metadata first, so self-description survives captures that
     know nothing about the CLI invocation; the capture's own keys win on
     collision (set_meta replaces in place) *)
  let ck =
    List.fold_left
      (fun ck (k, v) -> if meta ck k = None then set_meta ck k v else ck)
      ck w.w_extra
  in
  let path =
    Filename.concat w.w_dir (Printf.sprintf "checkpoint-%012d.ckpt" ck.ck_step)
  in
  let t0 = Unix.gettimeofday () in
  let bytes = write ~path ck in
  (if w.w_verify then
     match read path with
     | Ok ck' when digest ck' = digest ck -> ()
     | Ok _ | Error _ -> w.w_verify_failures <- w.w_verify_failures + 1);
  w.w_ms <- w.w_ms +. ((Unix.gettimeofday () -. t0) *. 1e3);
  w.w_files <- path :: List.filter (fun p -> p <> path) w.w_files;
  w.w_last_step <- ck.ck_step;
  w.w_writes <- w.w_writes + 1;
  w.w_bytes <- w.w_bytes + bytes;
  (* rotation: keep the newest K files *)
  let rec drop i = function
    | [] -> []
    | p :: rest when i >= w.w_keep ->
        (try Sys.remove p with Sys_error _ -> ());
        drop (i + 1) rest
    | p :: rest -> p :: drop (i + 1) rest
  in
  w.w_files <- drop 0 w.w_files;
  path

let last (w : writer) : string option =
  match w.w_files with [] -> None | p :: _ -> Some p

let writer_dir (w : writer) : string = w.w_dir

let stats (w : writer) : Export.checkpoint_stats =
  {
    Export.cp_last_step = w.w_last_step;
    cp_writes = w.w_writes;
    cp_bytes = w.w_bytes;
    cp_write_ms = w.w_ms;
    cp_verify_failures = w.w_verify_failures;
  }

(* -- crash dumps and manifests ---------------------------------------- *)

let write_file (path : string) (text : string) : unit =
  let oc = open_out_bin path in
  output_string oc text;
  if text = "" || text.[String.length text - 1] <> '\n' then
    output_char oc '\n';
  close_out oc

let events_json (events : Tracer.event list) : Json.t =
  (* Chrome trace-event shape, so the tail loads in Perfetto directly *)
  Json.Obj
    [
      ( "traceEvents",
        Json.Arr
          (List.map
             (fun (e : Tracer.event) ->
               Json.Obj
                 [
                   ("name", Json.Str e.Tracer.ev_name);
                   ( "ph",
                     Json.Str
                       (match e.Tracer.ev_kind with
                       | Tracer.Begin -> "B"
                       | Tracer.End -> "E") );
                   ("ts", Json.Num e.Tracer.ev_ts);
                   ("pid", Json.Num 1.0);
                   ("tid", Json.Num (float_of_int e.Tracer.ev_dom));
                 ])
             events) );
      ("displayTimeUnit", Json.Str "ms");
    ]

let crash_dump ~(dir : string) ?last_checkpoint ?(events = []) ?health
    ~(report : Json.t) () : string =
  let bundle = Filename.concat dir "crash" in
  mkdir_p bundle;
  write_file (Filename.concat bundle "report.json") (Json.to_string report);
  write_file
    (Filename.concat bundle "trace_tail.json")
    (Json.to_string (events_json events));
  (match health with
  | Some text -> write_file (Filename.concat bundle "health.txt") text
  | None -> ());
  (match last_checkpoint with
  | Some src -> (
      (* best-effort copy: a vanished checkpoint must not mask the trip *)
      try
        let ic = open_in_bin src in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        write_file (Filename.concat bundle (Filename.basename src)) text
      with Sys_error _ | End_of_file -> ())
  | None -> ());
  bundle

let write_manifest ~(dir : string) (j : Json.t) : string =
  mkdir_p dir;
  let path = Filename.concat dir "manifest.json" in
  write_file path (Json.to_string j);
  path
