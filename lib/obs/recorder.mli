(** Flight recorder: deterministic checkpoints, crash dumps and run
    manifests.

    A {e checkpoint} is a versioned, self-describing snapshot of a
    simulation's mutable state: an ordered metadata dictionary (enough
    for [limpetmlir replay] to rebuild the exact run), the step index
    and simulation clock, and a set of named float buffers serialized as
    {e exact Int64 bit patterns} — [-0.0], NaN payloads and every
    subnormal survive a round trip unchanged.  An MD5 content digest
    over those bit patterns (the PR 6 canonicalization discipline) makes
    corruption detectable and lets two runs be compared for bitwise
    equality by digest alone.

    The recorder is deliberately generic: it knows nothing about
    drivers, kernels or tissue.  [Sim.Driver] and [Tissue.Monodomain]
    capture themselves into checkpoints; this module owns the format,
    the periodic {!writer} (stride + keep-last-K rotation), the
    {!crash_dump} bundle and the run {!write_manifest}. *)

type section = {
  sec_name : string;  (** buffer identity, e.g. ["sv"], ["ext:Vm"] *)
  sec_data : floatarray;
}

type checkpoint = {
  ck_meta : (string * string) list;
      (** ordered; keys are space-free, values may contain spaces *)
  ck_step : int;  (** steps completed when the snapshot was taken *)
  ck_time : float;  (** simulation clock, ms (bit-exact round trip) *)
  ck_sections : section list;
}

val version : int
(** Format version written by {!to_string} (currently 1). *)

val meta : checkpoint -> string -> string option
(** First binding of a metadata key. *)

val set_meta : checkpoint -> string -> string -> checkpoint
(** Replace (or append) one metadata binding, preserving order. *)

val digest : checkpoint -> string
(** MD5 hex over the step index, the clock's Int64 bits and every
    section's name and Int64 float bit patterns, in order.  Metadata is
    {e not} digested: two runs reaching the same state through different
    configurations compare equal. *)

val to_string : checkpoint -> string
(** The self-describing text serialization (magic + version line,
    [meta] lines, [section] blocks of 16-hex-digit bit patterns, and a
    trailing [digest] line). *)

val of_string : string -> (checkpoint, Easyml.Diag.t) result
(** Parse and verify a serialization.  Every failure — bad magic,
    unsupported version, malformed line, bad hex token, truncated
    section, missing or mismatching digest — is a structured
    [Easyml.Diag] error ([checkpoint-format] / [checkpoint-digest]),
    never an exception. *)

val write : path:string -> checkpoint -> int
(** Serialize to [path] atomically (temp file + rename); returns the
    byte count written. *)

val read : string -> (checkpoint, Easyml.Diag.t) result
(** {!of_string} on a file's contents; I/O failures become
    [checkpoint-io] diagnostics. *)

(** {2 Periodic writer} *)

type writer
(** Writes checkpoints under one run directory at a fixed step stride,
    rotating old files out (keep the last K), verifying each write by
    re-reading it, and accumulating the statistics behind the
    [limpetmlir_checkpoint_*] Prometheus families. *)

val create_writer :
  ?keep:int ->
  ?verify:bool ->
  ?extra:(string * string) list ->
  dir:string ->
  stride:int ->
  unit ->
  writer
(** [keep] (default 3) bounds the retained files; [verify] (default
    true) re-reads every write and counts digest failures; [extra] is
    metadata merged into every recorded checkpoint (run-level facts the
    captured object does not know: total steps, stimulus protocol, CLI
    configuration).  Creates [dir] if needed.
    @raise Invalid_argument when [stride <= 0] or [keep <= 0]. *)

val due : writer -> step:int -> bool
(** True when [step] is a positive multiple of the stride. *)

val record : writer -> checkpoint -> string
(** Merge the writer's [extra] metadata, write
    [dir/checkpoint-<step>.ckpt], verify, rotate; returns the path. *)

val last : writer -> string option
(** Path of the most recent retained checkpoint. *)

val writer_dir : writer -> string

val stats : writer -> Export.checkpoint_stats
(** Cumulative counters for the Prometheus exposition. *)

(** {2 Crash dumps and manifests} *)

val crash_dump :
  dir:string ->
  ?last_checkpoint:string ->
  ?events:Tracer.event list ->
  ?health:string ->
  report:Json.t ->
  unit ->
  string
(** Bundle a post-mortem under [dir/crash/]: the structured abort
    report ([report.json]), the ring-buffer tail of recent trace events
    ([trace_tail.json]), the health snapshot text ([health.txt]) and a
    copy of the last on-disk checkpoint.  Best-effort: a failing copy
    never raises.  Returns the bundle directory. *)

val write_manifest : dir:string -> Json.t -> string
(** Write [dir/manifest.json] (pretty enough for operators, parseable
    by tools); returns the path. *)
