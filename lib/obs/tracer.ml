(** Low-overhead runtime tracing: spans, counters and gauges.

    The NMODL/Caliper-style telemetry core of the observability
    subsystem.  Design constraints, in order:

    - {b near-zero cost when disabled}: every recording entry point is a
      single atomic flag load and a conditional branch — no allocation,
      no clock read, no table lookup on the disabled path, so
      instrumentation can live inside the simulation hot loop;
    - {b contention-free when enabled}: each Domain records into its own
      ring buffer (reached through domain-local storage), so the
      parallel compute stage never takes a lock or bounces a cache line
      to trace; buffers merge only at {!snapshot} time;
    - {b bounded memory}: rings overwrite their oldest events once full
      and count what they dropped; counters and gauges are per-Domain
      accumulator cells (one float bump per hit, never an event), so
      hot counters cannot flood the ring.

    Timestamps are microseconds relative to the {!enable} call and are
    clamped per ring to be non-decreasing, so every per-Domain track is
    monotonic by construction.  Recording never touches simulation
    state: traced runs are bitwise identical to untraced runs (a
    differential test over the whole model catalogue enforces this). *)

type kind = Begin | End

type event = {
  ev_ts : float;  (** microseconds since {!enable} *)
  ev_dom : int;  (** Domain id — the trace track ("tid") *)
  ev_kind : kind;
  ev_name : string;
}

type ring = {
  r_dom : int;
  r_cap : int;
  r_ev : event option array;
  mutable r_n : int;  (** total events ever written (ring index = n mod cap) *)
  mutable r_last : float;  (** last raw timestamp issued on this ring *)
  r_counters : (string, float ref) Hashtbl.t;
  r_gauges : (string, float * float) Hashtbl.t;  (** name -> (ts, value) *)
}

(* -- global state ----------------------------------------------------- *)

let on = Atomic.make false
let default_capacity = 1 lsl 16
let capacity = ref default_capacity

(* Registration of rings is rare (once per domain); a mutex there is
   fine.  Recording touches only the caller's own ring. *)
let reg_lock = Mutex.create ()
let rings : ring list ref = ref []

(* Epoch of the current tracing session; timestamps are relative to it. *)
let t0 = Atomic.make 0.0

let now_abs_us () = Unix.gettimeofday () *. 1e6

let make_ring () : ring =
  let r =
    {
      r_dom = (Domain.self () :> int);
      r_cap = !capacity;
      r_ev = Array.make !capacity None;
      r_n = 0;
      r_last = 0.0;
      r_counters = Hashtbl.create 16;
      r_gauges = Hashtbl.create 8;
    }
  in
  Mutex.lock reg_lock;
  rings := r :: !rings;
  Mutex.unlock reg_lock;
  r

let ring_key : ring Domain.DLS.key = Domain.DLS.new_key make_ring
let my_ring () : ring = Domain.DLS.get ring_key

let clear_ring (r : ring) : unit =
  Array.fill r.r_ev 0 r.r_cap None;
  r.r_n <- 0;
  r.r_last <- 0.0;
  Hashtbl.reset r.r_counters;
  Hashtbl.reset r.r_gauges

(* -- control ---------------------------------------------------------- *)

let enabled () = Atomic.get on

(* Rings persist across sessions (worker domains cache theirs in
   domain-local storage), so reset clears contents rather than dropping
   rings.  Only call while no other domain is recording. *)
let reset () =
  Mutex.lock reg_lock;
  let rs = !rings in
  Mutex.unlock reg_lock;
  List.iter clear_ring rs

let enable () =
  reset ();
  Atomic.set t0 (now_abs_us ());
  Atomic.set on true

let disable () = Atomic.set on false

let set_capacity (n : int) : unit =
  if n < 16 then invalid_arg "Tracer.set_capacity: too small";
  if !rings <> [] then
    invalid_arg "Tracer.set_capacity: rings already exist (set it first)";
  capacity := n

(* -- recording -------------------------------------------------------- *)

(* Per-ring monotonic clock: gettimeofday can step backwards; clamping to
   the last issued value keeps every per-Domain track non-decreasing. *)
let ring_now (r : ring) : float =
  let t = now_abs_us () -. Atomic.get t0 in
  let t = if t < r.r_last then r.r_last else t in
  r.r_last <- t;
  t

let emit (k : kind) (name : string) : unit =
  let r = my_ring () in
  let ts = ring_now r in
  r.r_ev.(r.r_n mod r.r_cap) <-
    Some { ev_ts = ts; ev_dom = r.r_dom; ev_kind = k; ev_name = name };
  r.r_n <- r.r_n + 1

let span_begin (name : string) : unit =
  if Atomic.get on then emit Begin name

let span_end (name : string) : unit =
  if Atomic.get on then emit End name

let with_span (name : string) (f : unit -> 'a) : 'a =
  if not (Atomic.get on) then f ()
  else begin
    emit Begin name;
    Fun.protect ~finally:(fun () -> if Atomic.get on then emit End name) f
  end

let count (name : string) (v : float) : unit =
  if Atomic.get on then begin
    let r = my_ring () in
    match Hashtbl.find_opt r.r_counters name with
    | Some cell -> cell := !cell +. v
    | None -> Hashtbl.add r.r_counters name (ref v)
  end

let gauge (name : string) (v : float) : unit =
  if Atomic.get on then begin
    let r = my_ring () in
    Hashtbl.replace r.r_gauges name (ring_now r, v)
  end

(* -- snapshot --------------------------------------------------------- *)

type snapshot = {
  events : event list;
      (** balanced and globally sorted by timestamp (per-Domain order
          preserved for equal stamps) *)
  counters : (string * float) list;  (** summed across domains, sorted *)
  gauges : (string * float) list;  (** latest write wins, sorted *)
  dropped : int;  (** events lost to ring overwrite, all domains *)
}

(* Events of one ring, oldest first (ring order). *)
let ring_events (r : ring) : event list =
  let n = r.r_n and cap = r.r_cap in
  let first = if n > cap then n - cap else 0 in
  let out = ref [] in
  for k = n - 1 downto first do
    match r.r_ev.(k mod cap) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  !out

(* Balance one domain's event stream: drop End events with no open span
   (their Begin was overwritten, or tracing enabled mid-span) and close
   spans still open at snapshot time with a synthetic End at the last
   timestamp seen.  Exporters can then assume well-nested B/E pairs. *)
let balance (evs : event list) : event list =
  let last_ts = List.fold_left (fun acc e -> Float.max acc e.ev_ts) 0.0 evs in
  let rec go evs stack acc =
    match evs with
    | [] ->
        List.fold_left
          (fun acc (b : event) ->
            { b with ev_ts = last_ts; ev_kind = End } :: acc)
          acc stack
    | e :: rest -> (
        match e.ev_kind with
        | Begin -> go rest (e :: stack) (e :: acc)
        | End -> (
            match stack with
            | [] -> go rest stack acc  (* orphan End: drop *)
            | _ :: stack' -> go rest stack' (e :: acc)))
  in
  List.rev (go evs [] [])

(* Snapshot-stable tail of one ring under concurrent writers.  The
   writer protocol is: store the event (an immutable boxed option, so
   the slot write is a single pointer store — no tearing), then bump
   [r_n].  We read [r_n] (n0), copy the slot array, and read [r_n] again
   (n1).  Any slot a writer touched during the copy belongs to an event
   index in [n0, n1); a slot holding event k is only overwritten by
   event k + cap, so indices k in [max(0, n1 - cap), n0) are provably
   stable — both counter reads happened after their write and before
   any overwrite could start.  Concurrency can shrink the usable window
   (a fast writer lapping the ring drops it to empty) but never hand us
   a torn or misordered event. *)
let ring_tail (r : ring) ~(limit : int) : event list =
  let n0 = r.r_n in
  let copy = Array.copy r.r_ev in
  let n1 = r.r_n in
  let cap = r.r_cap in
  let lo = max 0 (max (n1 - cap) (n0 - limit)) in
  let out = ref [] in
  for k = n0 - 1 downto lo do
    match copy.(k mod cap) with Some e -> out := e :: !out | None -> ()
  done;
  (* belt and braces for counter staleness under the relaxed memory
     model: keep only the longest timestamp-monotonic suffix, so the
     published tail is monotonic per track no matter what we raced *)
  match List.rev !out with
  | [] -> []
  | newest :: older ->
      let rec keep acc bound = function
        | e :: rest when e.ev_ts <= bound -> keep (e :: acc) e.ev_ts rest
        | _ -> acc
      in
      keep [ newest ] newest.ev_ts older

let tail ?(limit = 256) () : event list =
  if limit <= 0 then []
  else begin
    Mutex.lock reg_lock;
    let rs = !rings in
    Mutex.unlock reg_lock;
    let per_dom = List.map (fun r -> balance (ring_tail r ~limit)) rs in
    let seqd =
      List.concat_map
        (fun evs -> List.mapi (fun i e -> (e.ev_ts, e.ev_dom, i, e)) evs)
        per_dom
    in
    let merged =
      List.sort compare seqd |> List.map (fun (_, _, _, e) -> e)
    in
    (* global cap: drop the oldest, keep whole per-domain suffixes is not
       required — balance already ran per domain, and dropping only
       Begin-side events cannot unbalance a list that gets re-balanced by
       consumers; to keep the "always balanced" contract we re-balance
       per domain after the cut *)
    let n = List.length merged in
    let cut =
      if n <= limit then merged
      else
        List.filteri (fun i _ -> i >= n - limit) merged
    in
    if List.length cut = n then cut
    else
      let by_dom : (int, event list ref) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun e ->
          match Hashtbl.find_opt by_dom e.ev_dom with
          | Some l -> l := e :: !l
          | None -> Hashtbl.add by_dom e.ev_dom (ref [ e ]))
        cut;
      let rebalanced =
        Hashtbl.fold
          (fun _ l acc -> balance (List.rev !l) :: acc)
          by_dom []
      in
      let seqd =
        List.concat_map
          (fun evs -> List.mapi (fun i e -> (e.ev_ts, e.ev_dom, i, e)) evs)
          rebalanced
      in
      List.sort compare seqd |> List.map (fun (_, _, _, e) -> e)
  end

let snapshot () : snapshot =
  Mutex.lock reg_lock;
  let rs = !rings in
  Mutex.unlock reg_lock;
  let per_dom = List.map (fun r -> balance (ring_events r)) rs in
  (* stable merge: sort by timestamp, keeping each domain's order (sort
     keys extended with the per-domain sequence number) *)
  let seqd =
    List.concat_map
      (fun evs -> List.mapi (fun i e -> (e.ev_ts, e.ev_dom, i, e)) evs)
      per_dom
  in
  let events =
    List.sort compare seqd |> List.map (fun (_, _, _, e) -> e)
  in
  let ctr : (string, float ref) Hashtbl.t = Hashtbl.create 32 in
  let gau : (string, float * float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Hashtbl.iter
        (fun name cell ->
          match Hashtbl.find_opt ctr name with
          | Some c -> c := !c +. !cell
          | None -> Hashtbl.add ctr name (ref !cell))
        r.r_counters;
      Hashtbl.iter
        (fun name (ts, v) ->
          match Hashtbl.find_opt gau name with
          | Some (ts', _) when ts' >= ts -> ()
          | _ -> Hashtbl.replace gau name (ts, v))
        r.r_gauges)
    rs;
  let sorted_bindings h f =
    Hashtbl.fold (fun k v acc -> (k, f v) :: acc) h []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    events;
    counters = sorted_bindings ctr (fun c -> !c);
    gauges = sorted_bindings gau snd;
    dropped =
      List.fold_left (fun acc r -> acc + max 0 (r.r_n - r.r_cap)) 0 rs;
  }
