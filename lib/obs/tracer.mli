(** Low-overhead runtime tracing: spans, counters and gauges.

    Per-Domain lock-free ring buffers with monotonic timestamps; every
    recording entry point costs one atomic flag load when tracing is
    disabled.  Buffers merge only at {!snapshot}, so the parallel
    compute stage records contention-free.  Recording never touches
    simulation state: traced runs are bitwise identical to untraced
    ones. *)

type kind = Begin | End

type event = {
  ev_ts : float;  (** microseconds since {!enable} *)
  ev_dom : int;  (** Domain id — the trace track ("tid") *)
  ev_kind : kind;
  ev_name : string;
}

val enabled : unit -> bool
val enable : unit -> unit
(** Clear all buffers, restart the clock epoch and start recording. *)

val disable : unit -> unit
(** Stop recording; buffered events stay readable via {!snapshot}. *)

val reset : unit -> unit
(** Clear every ring, counter and gauge.  Only call while no other
    domain is recording. *)

val set_capacity : int -> unit
(** Per-Domain ring capacity in events (default 65536).  Must be called
    before the first event is recorded.
    @raise Invalid_argument once any ring exists, or below 16. *)

val span_begin : string -> unit
val span_end : string -> unit
val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] brackets [f] in a Begin/End pair (exception-safe);
    when disabled it is exactly [f ()]. *)

val count : string -> float -> unit
(** Accumulate into a per-Domain counter cell — no event is recorded, so
    counters are safe at any rate. *)

val gauge : string -> float -> unit
(** Record a point-in-time value; the latest write (by timestamp) wins at
    snapshot. *)

type snapshot = {
  events : event list;
      (** balanced (well-nested B/E per domain) and sorted by timestamp *)
  counters : (string * float) list;  (** summed across domains, sorted *)
  gauges : (string * float) list;  (** latest write wins, sorted *)
  dropped : int;  (** events lost to ring overwrite, all domains *)
}

val snapshot : unit -> snapshot
(** Merge every domain's buffer.  Call while no other domain is
    recording (e.g. after the parallel region returned). *)

val tail : ?limit:int -> unit -> event list
(** The most recent [limit] (default 256) events across all rings,
    balanced per domain, monotonic per track, sorted by timestamp.
    Unlike {!snapshot}, [tail] is safe to call {e while other domains
    are recording} (the crash-dump path runs it mid-flight): each ring
    is copied once, the write counter is re-read after the copy, and
    only the window provably untouched by concurrent overwrites is
    kept — racing writers can shrink the tail but never corrupt it. *)
