(** Per-pipeline analysis cache.

    Dataflow results ({!Analysis.Interval} states, footprint summaries)
    are pure functions of a function body, but the pipeline mutates
    bodies in place — so results are memoized per function {e name} and
    invalidated whenever a pass reports a change to that function.
    Passes and post-pipeline clients (the bounds prover, deep
    verification, the race checker) share one cache instance per
    pipeline run, so e.g. running deep verification right after
    optimization reuses the converged interval facts instead of
    re-solving. *)

type t = {
  intervals : (string, Analysis.Interval.state) Hashtbl.t;
  footprints :
    (string, Analysis.Interval.state * Analysis.Footprint.access list)
    Hashtbl.t;
}

let create () : t =
  { intervals = Hashtbl.create 8; footprints = Hashtbl.create 8 }

(** Converged interval facts for [f], computed at most once per version
    of the body. *)
let interval (t : t) (f : Ir.Func.func) : Analysis.Interval.state =
  let name = f.Ir.Func.f_name in
  match Hashtbl.find_opt t.intervals name with
  | Some st -> st
  | None ->
      let st = Analysis.Interval.analyze_func f in
      Hashtbl.replace t.intervals name st;
      st

(** Footprint summary (and the interval state it was computed on). *)
let footprint (t : t) (f : Ir.Func.func) :
    Analysis.Interval.state * Analysis.Footprint.access list =
  let name = f.Ir.Func.f_name in
  match Hashtbl.find_opt t.footprints name with
  | Some r -> r
  | None ->
      let r = Analysis.Footprint.of_func f in
      Hashtbl.replace t.footprints name r;
      r

(** Drop every cached result for [f] — call after rewriting its body. *)
let invalidate (t : t) (f : Ir.Func.func) : unit =
  Hashtbl.remove t.intervals f.Ir.Func.f_name;
  Hashtbl.remove t.footprints f.Ir.Func.f_name

let clear (t : t) : unit =
  Hashtbl.reset t.intervals;
  Hashtbl.reset t.footprints

(** How many functions currently have a cached interval state (for
    tests asserting cache/invalidation behaviour). *)
let cached_intervals (t : t) : int = Hashtbl.length t.intervals
