(** Pass framework.

    Passes transform functions in place (regions carry mutable op lists;
    individual ops are immutable records, so rewrites build new op records
    sharing the original result values).  A pipeline runs passes in order
    and can be asked to verify after each step — used by the test suite to
    catch passes that break the IR. *)

type t = { name : string; run : Ir.Func.func -> bool }
(** [run] returns true when it changed anything. *)

let run_on_module (p : t) (m : Ir.Func.modl) : bool =
  List.fold_left (fun changed f -> p.run f || changed) false m.Ir.Func.m_funcs

type pipeline_options = {
  verify_each : bool;
  deep_verify : bool;
      (** verify with the dataflow-backed deep mode
          ({!Analysis.Deep}) instead of the structural verifier *)
}

let default_options = { verify_each = false; deep_verify = false }

exception Verification_failed of string * Ir.Verifier.error list

(** Run a pipeline.  [analyses] is the shared per-pipeline analysis
    cache: every function a pass changes is invalidated in it, so passes
    and post-pipeline clients querying it always see facts for the
    current body.  Pass a cache in to keep using it after the pipeline
    returns.

    [validate] turns on translation validation: before each pass the
    module is deep-copied, and after the pass the callback receives
    [(pass_name, input, output)] — clients prove the two equivalent
    ({!Analysis.Transval.check_module}) and decide what to do with the
    resulting certificate. *)
let run_pipeline ?(options = default_options)
    ?(analyses = Analyses.create ())
    ?(validate : (string -> Ir.Func.modl -> Ir.Func.modl -> unit) option)
    (passes : t list) (m : Ir.Func.modl) : unit =
  let verify () =
    if options.deep_verify then Analysis.Deep.verify_module m
    else Ir.Verifier.verify_module m
  in
  List.iter
    (fun p ->
      let snapshot =
        match validate with
        | Some _ -> Some (Ir.Func.copy_module m)
        | None -> None
      in
      Obs.Tracer.with_span ("pass:" ^ p.name) (fun () ->
          List.iter
            (fun f ->
              if p.run f then begin
                Obs.Tracer.count ("pass." ^ p.name ^ ".rewrites") 1.0;
                Analyses.invalidate analyses f
              end)
            m.Ir.Func.m_funcs);
      (match (validate, snapshot) with
      | Some v, Some pre ->
          Obs.Tracer.with_span ("pass:validate:" ^ p.name) (fun () ->
              v p.name pre m)
      | _ -> ());
      if options.verify_each then
        Obs.Tracer.with_span "pass:verify" (fun () ->
            match verify () with
            | [] -> ()
            | errs -> raise (Verification_failed (p.name, errs))))
    passes

(** Run a pass list to fixpoint (bounded, the bound only guards against a
    pass that oscillates). *)
let run_fixpoint ?(max_iters = 8) (passes : t list) (m : Ir.Func.modl) : unit =
  let rec go n =
    if n < max_iters then
      let changed =
        List.fold_left (fun c p -> run_on_module p m || c) false passes
      in
      if changed then go (n + 1)
  in
  go 0
