(** Standard optimization pipelines. *)

(** The default kernel pipeline, mirroring the in-tree MLIR passes the
    paper relies on: canonicalize → const-fold → CSE → LICM → (again, since
    hoisting exposes new CSE/folding opportunities) → DCE. *)
let standard : Pass.t list =
  [
    Canonicalize.pass;
    Const_fold.pass;
    Cse.pass;
    Licm.pass;
    Canonicalize.pass;
    Const_fold.pass;
    Cse.pass;
    Dce.pass;
  ]

let optimize ?(verify = false) ?(deep = false) (m : Ir.Func.modl) : unit =
  Pass.run_pipeline
    ~options:{ Pass.verify_each = verify; deep_verify = deep }
    standard m

(** Pass registry for the CLI's [-pass] flag. *)
let by_name : (string * Pass.t) list =
  [
    ("canonicalize", Canonicalize.pass);
    ("const-fold", Const_fold.pass);
    ("cse", Cse.pass);
    ("licm", Licm.pass);
    ("dce", Dce.pass);
  ]
