(** Standard optimization pipelines. *)

(** The default kernel pipeline, mirroring the in-tree MLIR passes the
    paper relies on: canonicalize → const-fold → CSE → LICM → (again, since
    hoisting exposes new CSE/folding opportunities) → DCE. *)
let standard : Pass.t list =
  [
    Canonicalize.pass;
    Const_fold.pass;
    Cse.pass;
    Licm.pass;
    Canonicalize.pass;
    Const_fold.pass;
    Cse.pass;
    Dce.pass;
  ]

(** [optimize ?validate m] runs the standard pipeline; [validate], when
    given, is called after every pass with [(pass_name, input, output)]
    for translation validation (see {!Pass.run_pipeline}). *)
let optimize ?(verify = false) ?(deep = false) ?validate (m : Ir.Func.modl) :
    unit =
  Pass.run_pipeline
    ~options:{ Pass.verify_each = verify; deep_verify = deep }
    ?validate standard m

(** Pass registry for the CLI's [-pass] flag. *)
let by_name : (string * Pass.t) list =
  [
    ("canonicalize", Canonicalize.pass);
    ("const-fold", Const_fold.pass);
    ("cse", Cse.pass);
    ("licm", Licm.pass);
    ("dce", Dce.pass);
  ]
