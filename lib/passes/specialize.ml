(** Runtime specialization: partial evaluation over run-constant
    parameters.

    The execution engines call generated kernels with a binding
    environment that is constant for the lifetime of a driver — the time
    step [dt], the padded cell count, folded model parameters.  This
    pass implements the staging view of that contract
    ([compile : (a -> b) -> (a -> b)]): given a lowered module and a set
    of (parameter value → constant) bindings, it clones the module,
    materializes each binding as an [arith.constant] op, and re-runs the
    standard pass pipeline so constant folding, CSE, LICM and DCE see
    through the former parameters.

    Two invariants make specialization a semantic identity (the
    differential tests check it bitwise across every model):

    - every fold performs exactly the IEEE operation the engines would
      have executed at run time (const-fold and the splat folder below
      share {!Const_fold.eval_op}, which is the engines' own evaluation);
    - function signatures never change — a bound parameter simply
      becomes dead, so callers keep passing it and the ABI, the cache
      and the driver's argument marshalling are untouched.

    Beyond the scalar pipeline, specialization unlocks *splat folding*:
    elementwise vector ops whose operands are all broadcasts of known
    constants fold to a broadcast of the scalar result.  In an
    unspecialized kernel those chains do not exist (literal-only
    arithmetic is already folded at the AST level); with [dt] bound they
    appear everywhere the integrators build coefficient vectors
    ([dt/2], [dt/6], …), and the batched engine then materializes the
    resulting constant rows once per kernel instance instead of
    re-importing them on every tile activation. *)

open Ir

type binding = BF of float | BI of int

type env = (string * binding) list

(** Canonical, order-independent serialization of a binding environment,
    suitable as a cache-key component: bindings sorted by name, floats
    rendered by their exact bit pattern (so [-0.0] and [0.0] — and any
    two distinct NaNs — never alias), ints in decimal. *)
let canon_env (env : env) : string =
  List.sort (fun (a, _) (b, _) -> String.compare a b) env
  |> List.map (fun (n, b) ->
         match b with
         | BF x -> Printf.sprintf "%s=f%016Lx" n (Int64.bits_of_float x)
         | BI i -> Printf.sprintf "%s=i%d" n i)
  |> String.concat ","

type stats = {
  bound : int;  (** parameter bindings substituted *)
  splat_folded : int;  (** vector ops folded to broadcasts of constants *)
  ops_before : int;  (** module op count before specialization *)
  ops_after : int;  (** … and after the pipeline re-run *)
}

(* ------------------------------------------------------------------ *)
(* Module cloning                                                      *)
(* ------------------------------------------------------------------ *)

(* Fresh op records with fresh operand/result arrays (the passes mutate
   region op lists and operand arrays in place; the source module may be
   a shared cache entry).  Value records are immutable and stay shared —
   ids remain unique because the clone lives in its own module.  The
   deep copy itself lives in {!Ir.Func} (the validation snapshots in
   {!Pass.run_pipeline} need it too). *)
let copy_module = Func.copy_module

(* Highest value / op ids in use, so inserted constants get fresh ids. *)
let max_ids (m : Func.modl) : int * int =
  let mv = ref 0 and mo = ref 0 in
  let note_v (v : Value.t) = if v.Value.id > !mv then mv := v.Value.id in
  let rec region (r : Op.region) : unit =
    List.iter note_v r.Op.r_args;
    List.iter
      (fun (o : Op.op) ->
        if o.Op.o_id > !mo then mo := o.Op.o_id;
        Array.iter note_v o.Op.operands;
        Array.iter note_v o.Op.results;
        Array.iter region o.Op.regions)
      r.Op.r_ops
  in
  List.iter
    (fun (f : Func.func) ->
      List.iter note_v f.Func.f_params;
      region f.Func.f_body)
    m.Func.m_funcs;
  (!mv, !mo)

(* ------------------------------------------------------------------ *)
(* Binding substitution                                                *)
(* ------------------------------------------------------------------ *)

let const_kind_of (b : binding) : Op.kind * Ty.t =
  match b with BF x -> (Op.ConstF x, Ty.F64) | BI i -> (Op.ConstI i, Ty.I64)

(* Prepend one constant per binding and rewrite every operand use of the
   bound parameter to it.  The parameter stays in the signature (dead at
   run time), so the caller ABI is unchanged. *)
let substitute ~(fresh_v : Ty.t -> Value.t) ~(fresh_o : unit -> int)
    (fn : Func.func) (bindings : (Value.t * binding) list) : int =
  let bindings =
    List.filter
      (fun ((pv : Value.t), b) ->
        let k, ty = const_kind_of b in
        ignore k;
        if pv.Value.ty <> ty then
          invalid_arg
            (Printf.sprintf "Specialize: binding for %%%d has type %s"
               pv.Value.id
               (Fmt.str "%a" Ty.pp pv.Value.ty))
        else List.exists (fun (p : Value.t) -> Value.equal p pv) fn.Func.f_params)
      bindings
  in
  if bindings = [] then 0
  else begin
    let repl : (int, Value.t) Hashtbl.t = Hashtbl.create 8 in
    let const_ops =
      List.map
        (fun ((pv : Value.t), b) ->
          let kind, ty = const_kind_of b in
          let r = fresh_v ty in
          Hashtbl.replace repl pv.Value.id r;
          {
            Op.o_id = fresh_o ();
            kind;
            operands = [||];
            results = [| r |];
            regions = [||];
          })
        bindings
    in
    let resolve (v : Value.t) : Value.t =
      match Hashtbl.find_opt repl v.Value.id with Some r -> r | None -> v
    in
    let rec rewrite (r : Op.region) : unit =
      List.iter
        (fun (o : Op.op) ->
          Array.iteri (fun k v -> o.Op.operands.(k) <- resolve v) o.Op.operands;
          Array.iter rewrite o.Op.regions)
        r.Op.r_ops
    in
    rewrite fn.Func.f_body;
    fn.Func.f_body.Op.r_ops <- const_ops @ fn.Func.f_body.Op.r_ops;
    List.length bindings
  end

(* ------------------------------------------------------------------ *)
(* Splat folding                                                       *)
(* ------------------------------------------------------------------ *)

(* An elementwise vector op whose operands are all broadcasts of known
   constants computes the same scalar in every lane; fold it to a
   broadcast of that scalar.  Evaluation reuses {!Const_fold.eval_op}
   (the same finite-result-only rules, the same {!Easyml.Builtins}
   evaluators the engines run per lane), so folded and unfolded kernels
   are bitwise identical. *)
let splat_fold_func ~(fresh_v : Ty.t -> Value.t) ~(fresh_o : unit -> int)
    (fn : Func.func) : int =
  let folded = ref 0 in
  (* value id -> scalar constant it splats (scalar consts included, so
     [Broadcast] of a constant is recognized in one walk) *)
  let splat : (int, Const_fold.cv) Hashtbl.t = Hashtbl.create 32 in
  (* vector selects with a known condition substitute their result *)
  let subst : (int, Value.t) Hashtbl.t = Hashtbl.create 8 in
  let resolve (v : Value.t) : Value.t =
    match Hashtbl.find_opt subst v.Value.id with Some r -> r | None -> v
  in
  (* scalar constants available for reuse, keyed by exact bit pattern *)
  let pool : (string, Value.t) Hashtbl.t = Hashtbl.create 32 in
  let pool_key (cv : Const_fold.cv) : string =
    match cv with
    | Const_fold.CF x -> Printf.sprintf "f%016Lx" (Int64.bits_of_float x)
    | Const_fold.CI i -> Printf.sprintf "i%d" i
    | Const_fold.CB b -> if b then "b1" else "b0"
  in
  let const_op_of (cv : Const_fold.cv) : Op.op option * Value.t =
    match Hashtbl.find_opt pool (pool_key cv) with
    | Some v -> (None, v)
    | None ->
        let kind, ty =
          match cv with
          | Const_fold.CF x -> (Op.ConstF x, Ty.F64)
          | Const_fold.CI i -> (Op.ConstI i, Ty.I64)
          | Const_fold.CB b -> (Op.ConstB b, Ty.I1)
        in
        let v = fresh_v ty in
        Hashtbl.replace pool (pool_key cv) v;
        ( Some
            {
              Op.o_id = fresh_o ();
              kind;
              operands = [||];
              results = [| v |];
              regions = [||];
            },
          v )
  in
  let rec go (r : Op.region) : unit =
    r.Op.r_ops <-
      List.concat_map
        (fun (o : Op.op) ->
          Array.iteri (fun k v -> o.Op.operands.(k) <- resolve v) o.Op.operands;
          Array.iter go o.Op.regions;
          match (o.Op.kind, o.Op.results) with
          | Op.ConstF x, [| r |] ->
              Hashtbl.replace splat r.Value.id (Const_fold.CF x);
              Hashtbl.replace pool (pool_key (Const_fold.CF x)) r;
              [ o ]
          | Op.ConstI x, [| r |] ->
              Hashtbl.replace splat r.Value.id (Const_fold.CI x);
              Hashtbl.replace pool (pool_key (Const_fold.CI x)) r;
              [ o ]
          | Op.ConstB x, [| r |] ->
              Hashtbl.replace splat r.Value.id (Const_fold.CB x);
              Hashtbl.replace pool (pool_key (Const_fold.CB x)) r;
              [ o ]
          | Op.Broadcast, [| r |] -> (
              match Hashtbl.find_opt splat o.Op.operands.(0).Value.id with
              | Some cv ->
                  Hashtbl.replace splat r.Value.id cv;
                  [ o ]
              | None -> [ o ])
          | Op.Select, [| r |]
            when (match r.Value.ty with Ty.Vec _ -> true | _ -> false) -> (
              (* known condition: the select is the chosen operand *)
              match Hashtbl.find_opt splat o.Op.operands.(0).Value.id with
              | Some (Const_fold.CB c) ->
                  let chosen = o.Op.operands.(if c then 1 else 2) in
                  Hashtbl.replace subst r.Value.id chosen;
                  (match Hashtbl.find_opt splat chosen.Value.id with
                  | Some cv -> Hashtbl.replace splat r.Value.id cv
                  | None -> ());
                  incr folded;
                  []
              | _ -> [ o ])
          | _, [| r |]
            when (match r.Value.ty with Ty.Vec _ -> true | _ -> false) -> (
              let cv_of (v : Value.t) = Hashtbl.find_opt splat v.Value.id in
              match Const_fold.eval_op o cv_of with
              | Some cv ->
                  let new_const, cval = const_op_of cv in
                  Hashtbl.replace splat r.Value.id cv;
                  incr folded;
                  let bcast =
                    {
                      o with
                      Op.kind = Op.Broadcast;
                      operands = [| cval |];
                      regions = [||];
                    }
                  in
                  (match new_const with
                  | Some c -> [ c; bcast ]
                  | None -> [ bcast ])
              | None -> [ o ])
          | _ -> [ o ])
        r.Op.r_ops
  in
  go fn.Func.f_body;
  !folded

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let module_ops (m : Func.modl) : int =
  List.fold_left (fun n f -> n + Func.op_count f) 0 m.Func.m_funcs

(** [run m ~bind] clones [m], substitutes the bindings [bind] returns
    for each function (pairs of a {e parameter} value and its constant;
    non-parameter values are ignored, type mismatches raise
    [Invalid_argument]), and re-runs the standard pipeline interleaved
    with splat folding to a fixpoint.  Signatures are preserved; the
    input module is never mutated.  [validate] is threaded to every
    embedded pipeline run, and additionally called around each splat
    folding round under the pass name ["splat-fold"]. *)
let run ?(optimize = true)
    ?(validate : (string -> Func.modl -> Func.modl -> unit) option)
    (m : Func.modl) ~(bind : Func.func -> (Value.t * binding) list) :
    Func.modl * stats =
  let ops_before = module_ops m in
  let m' = copy_module m in
  let mv, mo = max_ids m' in
  let next_v = ref (mv + 1) and next_o = ref (mo + 1) in
  let fresh_v (ty : Ty.t) : Value.t =
    let id = !next_v in
    next_v := id + 1;
    { Value.id; ty }
  in
  let fresh_o () : int =
    let id = !next_o in
    next_o := id + 1;
    id
  in
  let bound =
    List.fold_left
      (fun n (f : Func.func) -> n + substitute ~fresh_v ~fresh_o f (bind f))
      0 m'.Func.m_funcs
  in
  let splat_folded = ref 0 in
  if optimize then begin
    Pipeline.optimize ?validate m';
    (* splat folding exposes new scalar folds (and vice versa); iterate
       to a fixpoint — two rounds in practice *)
    let continue_ = ref true in
    let rounds = ref 0 in
    while !continue_ && !rounds < 8 do
      incr rounds;
      let pre =
        match validate with
        | Some _ -> Some (copy_module m')
        | None -> None
      in
      let n =
        List.fold_left
          (fun n f -> n + splat_fold_func ~fresh_v ~fresh_o f)
          0 m'.Func.m_funcs
      in
      (match (validate, pre) with
      | Some v, Some pre -> v "splat-fold" pre m'
      | _ -> ());
      splat_folded := !splat_folded + n;
      if n > 0 then Pipeline.optimize ?validate m' else continue_ := false
    done
  end;
  ( m',
    {
      bound;
      splat_folded = !splat_folded;
      ops_before;
      ops_after = module_ops m';
    } )
