(** Runtime specialization: partial evaluation over run-constant
    parameters.

    Clones a lowered module, substitutes a binding environment
    (parameter value → float/int constant) as IR constants, and re-runs
    the standard pass pipeline interleaved with splat folding (vector
    ops over broadcasts of constants fold to broadcasts).  Semantically
    the identity: every fold performs the exact IEEE operation the
    engines execute at run time, and function signatures are preserved
    so the caller ABI is unchanged. *)

type binding = BF of float | BI of int

type env = (string * binding) list
(** Named bindings, for cache keys; the substitution itself is by
    parameter {e value} (see {!run}). *)

val canon_env : env -> string
(** Canonical, order-independent serialization: sorted by name, floats
    by exact bit pattern ([Int64.bits_of_float], so [-0.0] ≠ [0.0]),
    ints in decimal. *)

type stats = {
  bound : int;  (** parameter bindings substituted *)
  splat_folded : int;  (** vector ops folded to broadcasts of constants *)
  ops_before : int;  (** module op count before specialization *)
  ops_after : int;  (** … and after the pipeline re-run *)
}

val run :
  ?optimize:bool ->
  ?validate:(string -> Ir.Func.modl -> Ir.Func.modl -> unit) ->
  Ir.Func.modl ->
  bind:(Ir.Func.func -> (Ir.Value.t * binding) list) ->
  Ir.Func.modl * stats
(** [run m ~bind] returns the specialized clone and fold statistics.
    [bind] is called once per function with the function itself and
    returns the (parameter value, constant) pairs to freeze; values that
    are not parameters of that function are ignored.  [m] is never
    mutated.  [validate] receives [(pass_name, input, output)] around
    every embedded pipeline pass and around each splat-folding round
    (pass name ["splat-fold"]) for translation validation.
    @raise Invalid_argument on a type-mismatched binding. *)
