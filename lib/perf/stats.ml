(** Statistics helpers used by the benchmark harness.

    The paper's protocol (§4): run five times, drop the two extrema,
    average the remaining three; aggregate speedups with the geometric
    mean. *)

let geomean (xs : float list) : float =
  match xs with
  | [] -> invalid_arg "Stats.geomean: empty"
  | _ ->
      let n = float_of_int (List.length xs) in
      Float.exp (List.fold_left (fun acc x -> acc +. Float.log x) 0.0 xs /. n)

(** Drop min and max, average the rest (the paper's 5-run protocol).
    Fewer than 3 samples leave nothing between the extrema; that is a
    protocol violation, not a degenerate average, so it raises. *)
let trimmed_mean (xs : float list) : float =
  match List.sort compare xs with
  | [] | [ _ ] | [ _; _ ] ->
      invalid_arg
        (Printf.sprintf
           "Stats.trimmed_mean: needs at least 3 samples, got %d"
           (List.length xs))
  | sorted ->
      let n = List.length sorted in
      let inner = List.filteri (fun i _ -> i > 0 && i < n - 1) sorted in
      List.fold_left ( +. ) 0.0 inner /. float_of_int (List.length inner)

(** Linear-interpolated quantile, [p] in [0, 1]. *)
let quantile (xs : float list) (p : float) : float =
  if xs = [] then invalid_arg "Stats.quantile: empty";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.quantile: p outside [0, 1]";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let x = p *. float_of_int (n - 1) in
  let i = int_of_float (Float.floor x) in
  let j = min (n - 1) (i + 1) in
  let f = x -. float_of_int i in
  (a.(i) *. (1.0 -. f)) +. (a.(j) *. f)

let median (xs : float list) : float = quantile xs 0.5

(** Interquartile range (Q3 - Q1, linear-interpolated). *)
let iqr (xs : float list) : float = quantile xs 0.75 -. quantile xs 0.25

let mean (xs : float list) : float =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let min_max (xs : float list) : float * float =
  match xs with
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: rest ->
      List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) rest
