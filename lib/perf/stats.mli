(** Statistics helpers for the benchmark harness. *)

val geomean : float list -> float
(** Geometric mean. @raise Invalid_argument on the empty list. *)

val trimmed_mean : float list -> float
(** Drop the minimum and maximum, average the rest — the paper's
    run-5-drop-extrema-average-3 protocol.
    @raise Invalid_argument on fewer than 3 samples (nothing would
    remain between the extrema). *)

val quantile : float list -> float -> float
(** [quantile xs p] is the linear-interpolated [p]-quantile, [p] in
    [0, 1].  @raise Invalid_argument on the empty list or [p] outside
    [0, 1]. *)

val median : float list -> float
(** [quantile xs 0.5]. *)

val iqr : float list -> float
(** Interquartile range, [quantile 0.75 - quantile 0.25] — the per-row
    dispersion the bench harness records next to each median. *)

val mean : float list -> float
val min_max : float list -> float * float
