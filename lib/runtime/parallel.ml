(** Domain-based parallel-for with a static schedule.

    The OCaml 5 stand-in for the paper's
    [#pragma omp parallel for schedule(static)].  The iteration space is
    split into [nthreads] contiguous chunks; chunk [k] runs on domain [k]
    (chunk 0 on the calling domain).  With [nthreads = 1] no domain is
    involved.

    Workers are persistent: the first parallel region parks a pool of
    domains on condition variables and later regions only hand them jobs,
    because [Domain.spawn] costs milliseconds — per-step spawning would
    dwarf the compute stage itself (the omp analogue: the thread team
    outlives the parallel region). *)

(** [chunks ~nthreads ~lo ~hi] returns the per-thread [(lo, hi)] ranges of a
    static schedule (balanced to within one iteration). *)
let chunks ~(nthreads : int) ~(lo : int) ~(hi : int) : (int * int) list =
  if nthreads <= 0 then invalid_arg "Parallel.chunks: nthreads must be > 0";
  let n = max 0 (hi - lo) in
  let base = n / nthreads and extra = n mod nthreads in
  let rec go k start acc =
    if k = nthreads then List.rev acc
    else
      let len = base + if k < extra then 1 else 0 in
      go (k + 1) (start + len) ((start, start + len) :: acc)
  in
  go 0 lo []

(* -- persistent worker pool ------------------------------------------- *)

type worker = {
  m : Mutex.t;
  cv : Condition.t;
  mutable job : (unit -> unit) option;
  mutable idle : bool;  (* no submitted job still running *)
  mutable failed : exn option;
  mutable stop : bool;
  mutable dom : unit Domain.t option;
}

let worker_loop (w : worker) () =
  Mutex.lock w.m;
  let running = ref true in
  while !running do
    match w.job with
    | Some f ->
        w.job <- None;
        Mutex.unlock w.m;
        let r = (try f (); None with e -> Some e) in
        Mutex.lock w.m;
        w.failed <- r;
        w.idle <- true;
        Condition.broadcast w.cv
    | None -> if w.stop then running := false else Condition.wait w.cv w.m
  done;
  Mutex.unlock w.m

let make_worker () : worker =
  let w =
    { m = Mutex.create (); cv = Condition.create (); job = None; idle = true;
      failed = None; stop = false; dom = None }
  in
  w.dom <- Some (Domain.spawn (worker_loop w));
  w

let submit (w : worker) (f : unit -> unit) : unit =
  Mutex.lock w.m;
  w.job <- Some f;
  w.idle <- false;
  w.failed <- None;
  Condition.broadcast w.cv;
  Mutex.unlock w.m

(** Wait for the worker's current job; re-raise its exception here. *)
let await (w : worker) : unit =
  Mutex.lock w.m;
  while not w.idle do
    Condition.wait w.cv w.m
  done;
  let r = w.failed in
  w.failed <- None;
  Mutex.unlock w.m;
  match r with Some e -> raise e | None -> ()

let pool : worker array ref = ref [||]
let pool_lock = Mutex.create ()
let shutdown_installed = ref false

(* Parked domains would make the program hang at exit; stop and join them
   from at_exit. *)
let stop_workers () =
  Mutex.lock pool_lock;
  let ws = !pool in
  pool := [||];
  Mutex.unlock pool_lock;
  Array.iter
    (fun w ->
      Mutex.lock w.m;
      w.stop <- true;
      Condition.broadcast w.cv;
      Mutex.unlock w.m)
    ws;
  Array.iter (fun w -> Option.iter Domain.join w.dom) ws

(* Grow the pool to [n] workers; caller holds [pool_lock]. *)
let ensure (n : int) : worker array =
  if Array.length !pool < n then begin
    if not !shutdown_installed then begin
      shutdown_installed := true;
      at_exit stop_workers
    end;
    pool :=
      Array.append !pool
        (Array.init (n - Array.length !pool) (fun _ -> make_worker ()))
  end;
  !pool

(** Run [jobs.(k)], k >= 1, on pooled workers while the caller runs
    [jobs.(0)]; returns when all are done, re-raising the first worker
    failure.  Nested or concurrent regions (the pool is busy) fall back to
    one-shot domains so they stay correct, just not pooled. *)
let run_on_pool (jobs : (unit -> unit) array) : unit =
  let n = Array.length jobs in
  if n = 1 then jobs.(0) ()
  else if Mutex.try_lock pool_lock then
    Fun.protect
      ~finally:(fun () -> Mutex.unlock pool_lock)
      (fun () ->
        let ws = ensure (n - 1) in
        for k = 1 to n - 1 do
          submit ws.(k - 1) jobs.(k)
        done;
        jobs.(0) ();
        let err = ref None in
        for k = 1 to n - 1 do
          try await ws.(k - 1)
          with e -> if Option.is_none !err then err := Some e
        done;
        match !err with Some e -> raise e | None -> ())
  else begin
    let ds = Array.map Domain.spawn (Array.sub jobs 1 (n - 1)) in
    jobs.(0) ();
    Array.iter Domain.join ds
  end

(* -- parallel loops ---------------------------------------------------- *)

(** [parallel_for ~nthreads ~lo ~hi body] runs [body chunk_lo chunk_hi] for
    every chunk of the static schedule, concurrently on [nthreads] domains.
    [body] must only write to disjoint data per chunk. *)
let parallel_for ~(nthreads : int) ~(lo : int) ~(hi : int)
    (body : int -> int -> unit) : unit =
  match List.filter (fun (l, h) -> h > l) (chunks ~nthreads ~lo ~hi) with
  | [] -> ()
  | [ (l, h) ] -> body l h
  | cs -> run_on_pool (Array.of_list (List.map (fun (l, h) () -> body l h) cs))

(** Like {!parallel_for} but the body also receives its chunk index, so
    callers can select per-domain resources (kernel instances, scratch
    rows) that must not be shared between domains. *)
let parallel_for_chunks ~(nthreads : int) ~(lo : int) ~(hi : int)
    (body : int -> int -> int -> unit) : unit =
  let cs = List.mapi (fun k c -> (k, c)) (chunks ~nthreads ~lo ~hi) in
  match List.filter (fun (_, (l, h)) -> h > l) cs with
  | [] -> ()
  | [ (k, (l, h)) ] -> body k l h
  | cs ->
      run_on_pool
        (Array.of_list (List.map (fun (k, (l, h)) () -> body k l h) cs))

(** Like {!parallel_for} but each chunk body produces a value; returns the
    values in chunk order. Used by reductions in the harness. *)
let parallel_map_chunks ~(nthreads : int) ~(lo : int) ~(hi : int)
    (body : int -> int -> 'a) : 'a list =
  let cs = Array.of_list (chunks ~nthreads ~lo ~hi) in
  let out = Array.make (Array.length cs) None in
  run_on_pool
    (Array.mapi (fun i (l, h) () -> out.(i) <- Some (body l h)) cs);
  Array.to_list (Array.map Option.get out)
