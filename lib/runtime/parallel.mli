(** Domain-based parallel-for with a static schedule — the OCaml stand-in
    for [#pragma omp parallel for schedule(static)]. *)

val chunks : nthreads:int -> lo:int -> hi:int -> (int * int) list
(** Per-thread [(lo, hi)] ranges; a partition of [lo, hi) balanced to
    within one iteration. @raise Invalid_argument when [nthreads <= 0]. *)

val parallel_for : nthreads:int -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** Run [body chunk_lo chunk_hi] for every chunk concurrently (chunk 0 on
    the calling domain).  Bodies must write disjoint data. *)

val parallel_for_chunks :
  nthreads:int -> lo:int -> hi:int -> (int -> int -> int -> unit) -> unit
(** Like {!parallel_for} but the body also receives its chunk index
    ([body k chunk_lo chunk_hi]), for per-domain resources such as
    non-reentrant kernel instances. *)

val parallel_map_chunks :
  nthreads:int -> lo:int -> hi:int -> (int -> int -> 'a) -> 'a list
(** Like {!parallel_for} but collects per-chunk results in chunk order. *)
