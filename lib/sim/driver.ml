(** Simulation driver: the openCARP [bench] analogue.

    Owns the runtime data (cell state buffer in the configured layout,
    external-variable arrays, lookup tables, scratch row buffers), compiles
    the generated kernel with the execution engine, and advances the
    two-stage simulation: the *compute stage* (the generated kernel, run in
    parallel chunks over cells) followed by the per-cell membrane update
    standing in for the solver stage, [Vm += dt * (stim(t) - Iion)]. *)

open Exec
module M = Easyml.Model

exception Driver_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Driver_error s)) fmt

type engine = Fused | Batched | Compiled | Reference | Native

type t = {
  gen : Codegen.Kernel.t;
  ncells : int;
  ncells_pad : int;
  dt : float;
  sv : floatarray;
  exts : (string * floatarray) list;
  params_buf : floatarray option;
  tables : floatarray list;  (** one per lookup plan, row-major *)
  engine : engine;
  tile : int;
      (** resolved batched-engine tile size in vector blocks (1 for the
          other engines); Domain-parallel chunk boundaries align to it *)
  specialized : bool;
      (** the kernel was partially evaluated over this driver's run
          constants ({!Codegen.Cache.specialize}); also enables the
          stimulus phase split in {!run} — results are bitwise identical
          either way *)
  native : (string -> Rt.v array -> Rt.v array) option;
      (** symbol lookup into the JIT-compiled shared object
          ({!Codegen.Cache.native}); [Some] exactly when [engine] is
          {!Native} — each call returns a fresh binding with private
          marshalling buffers, so per-thread runners stay independent *)
  registry : Rt.registry;
  proved : (int, unit) Hashtbl.t;
      (** access ops of the compute kernel proved in-bounds under this
          driver's buffer contract; engines compile them unchecked *)
  mutable runners : (Rt.v array -> Rt.v array) array;
      (** one compiled kernel instance per thread (engines are not
          reentrant: each has its own register file) *)
  mutable rows : floatarray list array;  (** per-thread LUT row buffers *)
  mutable t_now : float;
  mutable steps_done : int;
  mutable health : Obs.Health.t option;
      (** numerical-health monitor; sampled inside the compute stage's
          chunks when due, enforced after the parallel region returns *)
}

let width (d : t) = d.gen.Codegen.Kernel.cfg.Codegen.Config.width

let make_registry () : Rt.registry =
  let r = Rt.create_registry () in
  Runtime.Lut.register r;
  r

let make_runner (d_engine : engine) (registry : Rt.registry) ~proved
    ~(tile : int) ~native (modl : Ir.Func.modl) : Rt.v array -> Rt.v array =
  match d_engine with
  | Native -> (
      match native with
      | Some lookup -> lookup Codegen.Kernel.compute_name
      | None -> fail "native engine without a compiled library")
  | Fused ->
      let lookup = Fused.compile_module ~externs:registry ~proved modl in
      lookup Codegen.Kernel.compute_name
  | Batched ->
      let lookup =
        Batched.compile_module ~externs:registry ~proved ~tile modl
      in
      lookup Codegen.Kernel.compute_name
  | Compiled ->
      let lookup = Engine.compile_module ~externs:registry ~proved modl in
      lookup Codegen.Kernel.compute_name
  | Reference ->
      (* the reference interpreter never elides checks *)
      fun args -> Interp.run ~externs:registry modl Codegen.Kernel.compute_name args

let make_rows (gen : Codegen.Kernel.t) : floatarray list =
  let w = gen.Codegen.Kernel.cfg.Codegen.Config.width in
  List.map
    (fun plan ->
      Rt.buffer (max 1 (Easyml.Lut_cones.n_columns plan * w)))
    gen.Codegen.Kernel.lut_plans

(** Initialize state and external buffers from the model's [_init] values
    and (re)build the lookup tables by running the generated [lut_init_*]
    functions through the engine. *)
let reset (d : t) : unit =
  let model = d.gen.Codegen.Kernel.model in
  let layout = d.gen.Codegen.Kernel.cfg.Codegen.Config.layout in
  let nvars = d.gen.Codegen.Kernel.nvars in
  (* state *)
  List.iter
    (fun (name, k) ->
      let init =
        match M.find_state model name with
        | Some sv -> sv.M.sv_init
        | None -> 0.0
      in
      for c = 0 to d.ncells_pad - 1 do
        Float.Array.set d.sv
          (Runtime.Layout.index layout ~nvars ~ncells:d.ncells_pad ~cell:c ~var:k)
          init
      done)
    d.gen.Codegen.Kernel.state_index;
  (* externals *)
  List.iter
    (fun (name, buf) ->
      let init =
        match M.find_ext model name with Some e -> e.M.ext_init | None -> 0.0
      in
      Float.Array.fill buf 0 (Float.Array.length buf) init)
    d.exts;
  (* parameters (when not folded) *)
  (match d.params_buf with
  | None -> ()
  | Some buf ->
      List.iteri
        (fun k (_, v) -> Float.Array.set buf k v)
        model.M.params);
  (* lookup tables *)
  let lookup =
    match d.engine with
    | Native -> (
        match d.native with
        | Some lookup -> lookup
        | None -> fail "native engine without a compiled library")
    | Fused ->
        Fused.compile_module ~externs:d.registry ~proved:d.proved
          d.gen.Codegen.Kernel.modl
    | Batched ->
        Batched.compile_module ~externs:d.registry ~proved:d.proved
          ~tile:d.tile d.gen.Codegen.Kernel.modl
    | Compiled ->
        Engine.compile_module ~externs:d.registry ~proved:d.proved
          d.gen.Codegen.Kernel.modl
    | Reference ->
        fun name args ->
          Interp.run ~externs:d.registry d.gen.Codegen.Kernel.modl name args
  in
  Obs.Tracer.with_span "driver.lut_init" (fun () ->
      List.iter2
        (fun (plan : Easyml.Lut_cones.t) table ->
          let init =
            lookup (Codegen.Kernel.lut_init_name plan.Easyml.Lut_cones.spec)
          in
          ignore (init [| Rt.M table; Rt.F d.dt |]))
        d.gen.Codegen.Kernel.lut_plans d.tables);
  (* drop the lazily-compiled per-thread kernel instances too: a reset
     driver must re-run exactly like a fresh one — same results AND the
     same trace (compile spans included), so consecutive traced runs are
     comparable event for event *)
  d.runners <- [||];
  d.rows <- [||];
  d.t_now <- 0.0;
  d.steps_done <- 0

(** [create ?engine ?elide gen ~ncells ~dt] builds a driver.  With
    [elide] (the default) the bounds prover runs over the compute kernel
    seeded with this driver's buffer sizes, and every access it
    certifies compiles without its runtime bounds check — results are
    bitwise identical either way (only failure branches are dropped);
    [~elide:false] keeps every check, for differentials and ablation.
    [tile] overrides the batched engine's tile size in vector blocks
    (default: the config's [tile] knob, 0 = auto-size for L1); results
    are bitwise identical for every tile size.  [specialize] (default
    true) partially evaluates the kernel over this driver's run
    constants — [dt] and the padded cell count become IR constants and
    the pass pipeline re-runs over them ({!Codegen.Cache.specialize});
    the reference interpreter always runs the unspecialized module so
    differentials keep a pristine baseline. *)
let create ?(engine = Fused) ?(elide = true) ?(tile = 0) ?(specialize = true)
    (gen : Codegen.Kernel.t) ~(ncells : int) ~(dt : float) : t =
  if ncells <= 0 then fail "ncells must be positive";
  if dt <= 0.0 then fail "dt must be positive";
  if tile < 0 then fail "tile must be non-negative";
  let cfg = gen.Codegen.Kernel.cfg in
  let w = cfg.Codegen.Config.width in
  (* pad the cell count so every vector chunk is full (openCARP pads its
     state arrays the same way) *)
  let ncells_pad = (ncells + w - 1) / w * w in
  (* specialize before anything downstream: bounds proofs, tile planning
     and compilation must all see the module that will actually run *)
  let specialize = specialize && engine <> Reference in
  let gen =
    if specialize then Codegen.Cache.specialize gen ~dt ~ncells_pad else gen
  in
  (* the native engine resolves its machine-code artifact eagerly so a
     missing/failing toolchain degrades here — once, with a warning, to
     the batched engine — rather than raising later inside a worker *)
  let engine, native =
    match engine with
    | Native -> (
        match Codegen.Cache.native gen with
        | Ok lookup -> (Native, Some lookup)
        | Error diag ->
            prerr_endline
              (Easyml.Diag.to_string ~file:gen.Codegen.Kernel.model.M.name diag);
            (Batched, None))
    | e -> (e, None)
  in
  let layout = cfg.Codegen.Config.layout in
  let nvars = max 1 gen.Codegen.Kernel.nvars in
  let sv =
    Rt.buffer (Runtime.Layout.size layout ~nvars ~ncells:ncells_pad)
  in
  let exts =
    List.map
      (fun name -> (name, Rt.buffer ncells_pad))
      gen.Codegen.Kernel.ext_order
  in
  let params_buf =
    if gen.Codegen.Kernel.param_order = [] then None
    else Some (Rt.buffer (List.length gen.Codegen.Kernel.param_order))
  in
  let tables =
    List.map
      (fun (plan : Easyml.Lut_cones.t) ->
        let spec = plan.Easyml.Lut_cones.spec in
        Rt.buffer
          (max 1 (M.lut_rows spec * Easyml.Lut_cones.n_columns plan)))
      gen.Codegen.Kernel.lut_plans
  in
  let registry = make_registry () in
  (* proofs run on the module that will execute: op ids differ between
     the base and specialized clones, so the proved set must match *)
  let proved =
    if elide then Kernel_facts.prove_bounds gen ~ncells_pad
    else Hashtbl.create 1
  in
  if specialize then
    Obs.Tracer.count
      ("specialize.guards_elided:" ^ gen.Codegen.Kernel.model.M.name)
      (float_of_int (Hashtbl.length proved));
  (* resolve the tile size once (planning is deterministic, so this is
     exactly what compilation will pick); parallel chunking aligns to it *)
  let tile =
    match engine with
    | Batched ->
        let requested = if tile <> 0 then tile else cfg.Codegen.Config.tile in
        Exec.Batched.plan_tile ~tile:requested gen.Codegen.Kernel.modl
          ~name:Codegen.Kernel.compute_name
    | Fused | Compiled | Reference | Native -> 1
  in
  let d =
    {
      gen;
      ncells;
      ncells_pad;
      dt;
      sv;
      exts;
      params_buf;
      tables;
      engine;
      tile;
      specialized = specialize;
      native;
      registry;
      proved;
      runners = [||];
      rows = [||];
      t_now = 0.0;
      steps_done = 0;
      health = None;
    }
  in
  reset d;
  d

(** {!create} through the shared compile cache: generate (or reuse) the
    kernel for [model] under [cfg] via {!Codegen.Cache}, then build the
    driver.  Repeated drivers for the same model × config skip codegen
    entirely. *)
let create_cached ?engine ?elide ?tile ?specialize ?optimize
    (cfg : Codegen.Config.t) (model : M.t) ~(ncells : int) ~(dt : float) : t =
  create ?engine ?elide ?tile ?specialize
    (Codegen.Cache.generate ?optimize cfg model)
    ~ncells ~dt

(* ------------------------------------------------------------------ *)
(* Numerical-health monitoring                                         *)
(* ------------------------------------------------------------------ *)

(** Attach a health monitor: streaming min/max/mean, NaN/Inf counts and
    clamp-violation counters per state variable plus a membrane-potential
    watchdog, sampled inside the compute stage's chunks on the sampling
    Domain.  Gates (Rush-Larsen / Sundnes / markov_be states — occupancy
    semantics, must stay in [0,1]) get range checking; the default
    [warn] sink prints each trip once through {!Easyml.Diag}. *)
let enable_health ?(cfg = Obs.Health.default_config) ?warn (d : t) : unit =
  let model = d.gen.Codegen.Kernel.model in
  let layout =
    match d.gen.Codegen.Kernel.cfg.Codegen.Config.layout with
    | Runtime.Layout.AoS -> Obs.Health.Cell_major
    | Runtime.Layout.SoA -> Obs.Health.Var_major
    | Runtime.Layout.AoSoA w -> Obs.Health.Blocked w
  in
  let is_gate = function
    | M.RushLarsen | M.Sundnes | M.MarkovBE -> true
    | M.FE | M.RK2 | M.RK4 -> false
  in
  let vars =
    List.map
      (fun (name, k) ->
        let gate =
          match M.find_state model name with
          | Some sv -> is_gate sv.M.sv_method
          | None -> false
        in
        { Obs.Health.v_name = name; v_slot = k; v_gate = gate })
      d.gen.Codegen.Kernel.state_index
  in
  let warn =
    match warn with
    | Some w -> w
    | None ->
        fun msg ->
          let diag = Easyml.Diag.make ~code:"health" msg in
          prerr_endline (Easyml.Diag.to_string ~file:model.M.name diag)
  in
  let h =
    Obs.Health.create ~cfg ~model:model.M.name ~layout
      ~nvars:(max 1 d.gen.Codegen.Kernel.nvars) ~ncells_pad:d.ncells_pad ~vars
      ~warn ()
  in
  Obs.Health.set_enabled h true;
  d.health <- Some h

let disable_health (d : t) : unit =
  (match d.health with Some h -> Obs.Health.set_enabled h false | None -> ());
  d.health <- None

let health (d : t) : Obs.Health.t option = d.health

let health_snapshot (d : t) : Obs.Health.snapshot option =
  Option.map Obs.Health.snapshot d.health

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let engine_name = function
  | Fused -> "fused"
  | Batched -> "batched"
  | Compiled -> "closure"
  | Reference -> "interp"
  | Native -> "native"

let float_bits_hex (v : float) : string =
  Printf.sprintf "%016Lx" (Int64.bits_of_float v)

(** Snapshot every mutable buffer of this driver into a checkpoint: the
    state variables (in whatever layout the config picked), every
    external array, the parameter buffer, the step index and the
    simulation clock.  Lookup tables are {e not} captured — {!reset}
    rebuilds them deterministically from [dt], which the metadata pins
    bit-exactly — so a restored driver is bitwise indistinguishable from
    one that never stopped. *)
let capture (d : t) : Obs.Recorder.checkpoint =
  let cfg = d.gen.Codegen.Kernel.cfg in
  let sections =
    ({ Obs.Recorder.sec_name = "sv"; sec_data = Float.Array.copy d.sv }
     :: List.map
          (fun (name, buf) ->
            {
              Obs.Recorder.sec_name = "ext:" ^ name;
              sec_data = Float.Array.copy buf;
            })
          d.exts)
    @ (match d.params_buf with
      | None -> []
      | Some b ->
          [ { Obs.Recorder.sec_name = "params"; sec_data = Float.Array.copy b } ])
  in
  {
    Obs.Recorder.ck_meta =
      [
        ("kind", "cell");
        ("model", d.gen.Codegen.Kernel.model.M.name);
        ("config", Codegen.Config.describe cfg);
        ("layout", Runtime.Layout.name cfg.Codegen.Config.layout);
        ("width", string_of_int cfg.Codegen.Config.width);
        ("nvars", string_of_int d.gen.Codegen.Kernel.nvars);
        ("ncells", string_of_int d.ncells);
        ("ncells_pad", string_of_int d.ncells_pad);
        ("dt_bits", float_bits_hex d.dt);
        ("engine", engine_name d.engine);
        ("tile", string_of_int d.tile);
        ("specialized", string_of_bool d.specialized);
      ];
    ck_step = d.steps_done;
    ck_time = d.t_now;
    ck_sections = sections;
  }

(** Load a checkpoint into a driver built with the identical model ×
    config × population — anything else is refused with a structured
    diagnostic (wrong buffers silently blitted would be wrong physics,
    not an error message).  Sections this driver does not own (e.g. the
    tissue layer's activation state) are ignored; {!Tissue.Monodomain}
    restores those itself. *)
let restore (d : t) (ck : Obs.Recorder.checkpoint) :
    (unit, Easyml.Diag.t) result =
  let ( let* ) = Result.bind in
  let mismatch fmt =
    Fmt.kstr
      (fun m ->
        Error (Easyml.Diag.make ~sev:Easyml.Diag.Error ~code:"checkpoint-mismatch" m))
      fmt
  in
  let check key actual =
    match Obs.Recorder.meta ck key with
    | Some v when v = actual -> Ok ()
    | Some v -> mismatch "checkpoint has %s=%s, this driver needs %s" key v actual
    | None -> mismatch "checkpoint missing required metadata key %s" key
  in
  let cfg = d.gen.Codegen.Kernel.cfg in
  let* () = check "model" d.gen.Codegen.Kernel.model.M.name in
  let* () = check "layout" (Runtime.Layout.name cfg.Codegen.Config.layout) in
  let* () = check "width" (string_of_int cfg.Codegen.Config.width) in
  let* () = check "nvars" (string_of_int d.gen.Codegen.Kernel.nvars) in
  let* () = check "ncells" (string_of_int d.ncells) in
  let* () = check "ncells_pad" (string_of_int d.ncells_pad) in
  let* () = check "dt_bits" (float_bits_hex d.dt) in
  let blit name (dst : floatarray) =
    match
      List.find_opt
        (fun s -> s.Obs.Recorder.sec_name = name)
        ck.Obs.Recorder.ck_sections
    with
    | None -> mismatch "checkpoint missing section %s" name
    | Some s ->
        let n = Float.Array.length s.Obs.Recorder.sec_data in
        if n <> Float.Array.length dst then
          mismatch "section %s holds %d value(s), driver buffer holds %d" name
            n (Float.Array.length dst)
        else begin
          Float.Array.blit s.Obs.Recorder.sec_data 0 dst 0 n;
          Ok ()
        end
  in
  let* () = blit "sv" d.sv in
  let* () =
    List.fold_left
      (fun acc (name, buf) ->
        let* () = acc in
        blit ("ext:" ^ name) buf)
      (Ok ()) d.exts
  in
  let* () =
    match d.params_buf with None -> Ok () | Some b -> blit "params" b
  in
  d.t_now <- ck.Obs.Recorder.ck_time;
  d.steps_done <- ck.Obs.Recorder.ck_step;
  Ok ()

(* Make sure we have per-thread kernel instances and row buffers. *)
let ensure_threads (d : t) (nthreads : int) : unit =
  let cur = Array.length d.runners in
  if cur < nthreads then begin
    let extra_runners =
      Array.init (nthreads - cur) (fun _ ->
          make_runner d.engine d.registry ~proved:d.proved ~tile:d.tile
            ~native:d.native d.gen.Codegen.Kernel.modl)
    in
    let extra_rows =
      Array.init (nthreads - cur) (fun _ -> make_rows d.gen)
    in
    d.runners <- Array.append d.runners extra_runners;
    d.rows <- Array.append d.rows extra_rows
  end

let kernel_args (d : t) ~(start : int) ~(stop : int) ~(rows : floatarray list)
    : Rt.v array =
  Array.of_list
    ([
       Rt.I start;
       Rt.I stop;
       Rt.I d.ncells_pad;
       Rt.F d.dt;
       Rt.F d.t_now;
       Rt.M d.sv;
     ]
    @ List.map (fun (_, buf) -> Rt.M buf) d.exts
    @ (match d.params_buf with None -> [] | Some b -> [ Rt.M b ])
    @ List.concat
        (List.map2 (fun table row -> [ Rt.M table; Rt.M row ]) d.tables rows))

(** Run the compute stage once over all cells with [nthreads] domains. *)
let compute_stage ?(nthreads = 1) (d : t) : unit =
  ensure_threads d nthreads;
  let w = width d in
  (* resolve the health probe once per step: [None] when monitoring is
     off or this step is not due, so the hot path pays one atomic load *)
  let probe =
    match d.health with
    | Some h when Obs.Health.due h ~step:d.steps_done -> Some h
    | _ -> None
  in
  let vm_buf =
    match probe with Some _ -> List.assoc_opt "Vm" d.exts | None -> None
  in
  let sample h ~lo ~hi =
    (* clamp to the real cell count: padded lanes mirror real cells and
       would double-count their values *)
    let hi = min hi d.ncells in
    if hi > lo then
      Obs.Tracer.with_span "driver.health" (fun () ->
          Obs.Health.sample_chunk h ~sv:d.sv ~vm:vm_buf ~lo ~hi
            ~step:d.steps_done)
  in
  Obs.Tracer.with_span "driver.compute" (fun () ->
      if nthreads = 1 then begin
        let args =
          kernel_args d ~start:0 ~stop:d.ncells_pad ~rows:d.rows.(0)
        in
        ignore (d.runners.(0) args);
        match probe with
        | Some h -> sample h ~lo:0 ~hi:d.ncells
        | None -> ()
      end
      else
        (* chunk boundaries must be aligned to the vector width, so the
           parallel-for runs over AoSoA blocks rather than cells; for the
           batched engine they additionally align to whole tiles, so no
           domain processes a partial tile in its interior.  Each domain
           uses its own kernel instance and LUT scratch rows (register
           files and tile scratch are not reentrant). *)
        let unit_blocks = match d.engine with Batched -> d.tile | _ -> 1 in
        let uw = unit_blocks * w in
        let nunits = (d.ncells_pad + uw - 1) / uw in
        Runtime.Parallel.parallel_for_chunks ~nthreads ~lo:0 ~hi:nunits
          (fun k ulo uhi ->
            (* runs on the worker domain, so the span lands on that
               domain's track in the trace *)
            Obs.Tracer.with_span "driver.chunk" (fun () ->
                let start = ulo * uw
                and stop = min (uhi * uw) d.ncells_pad in
                if stop > start then begin
                  let args = kernel_args d ~start ~stop ~rows:d.rows.(k) in
                  ignore (d.runners.(k) args);
                  (* reduce this chunk into the worker Domain's own
                     accumulators while its cells are still cache-hot *)
                  match probe with
                  | Some h -> sample h ~lo:start ~hi:stop
                  | None -> ()
                end)));
  match probe with
  | Some h ->
      Obs.Health.note_sampled h;
      (* trips recorded by worker Domains surface here, on the caller:
         [Warn] prints each once, [Abort] raises {!Obs.Health.Tripped} *)
      Obs.Health.enforce h
  | None -> ()

let find_ext_buf (d : t) (name : string) : floatarray =
  match List.assoc_opt name d.exts with
  | Some b -> b
  | None -> fail "model has no external variable %s" name

(** Membrane update with a precomputed stimulus current [s]:
    [Vm += dt * (s - Iion)] on every cell, when the model exposes the
    conventional [Vm]/[Iion] externals.  The phase-split {!run} calls
    this directly with one constant current per phase. *)
let membrane_update_current (d : t) (s : float) : unit =
  match (List.assoc_opt "Vm" d.exts, List.assoc_opt "Iion" d.exts) with
  | Some vm, Some iion ->
      Obs.Tracer.with_span "driver.update" (fun () ->
          for c = 0 to d.ncells - 1 do
            Float.Array.set vm c
              (Float.Array.get vm c
              +. (d.dt *. (s -. Float.Array.get iion c)))
          done;
          (* padded lanes mirror the last real cell so vector math stays
             finite *)
          for c = d.ncells to d.ncells_pad - 1 do
            Float.Array.set vm c (Float.Array.get vm (d.ncells - 1))
          done)
  | _ -> ()

(** Membrane update (solver-stage stand-in for single-cell runs):
    [Vm += dt * (stim(t) - Iion)] on every cell. *)
let membrane_update ?(stim = Stim.none) (d : t) : unit =
  membrane_update_current d (Stim.at stim d.t_now)

(** One full time step: compute stage + membrane update. *)
let step ?(nthreads = 1) ?(stim = Stim.none) (d : t) : unit =
  compute_stage ~nthreads d;
  membrane_update ~stim d;
  d.t_now <- d.t_now +. d.dt;
  d.steps_done <- d.steps_done + 1

(** Like {!step}, returning the wall-clock seconds of the compute stage. *)
let step_timed ?(nthreads = 1) ?(stim = Stim.none) (d : t) : float =
  let t0 = Unix.gettimeofday () in
  compute_stage ~nthreads d;
  let dt_wall = Unix.gettimeofday () -. t0 in
  membrane_update ~stim d;
  d.t_now <- d.t_now +. d.dt;
  d.steps_done <- d.steps_done + 1;
  dt_wall

(** Current simulation time in ms. *)
let time (d : t) : float = d.t_now

(** Advance the clock without running a stage — for callers that drive the
    solver stage themselves (e.g. the tissue example). *)
let tick (d : t) : unit =
  d.t_now <- d.t_now +. d.dt;
  d.steps_done <- d.steps_done + 1

(** Run [steps] time steps; returns wall-clock seconds spent in the compute
    stage (the quantity the paper's figures report).

    On a specialized driver the time loop is split into stimulus phases
    ({!Stim.segments}): within each phase the stimulus current is a
    constant, so the per-step body is branch-free — no pulse-edge test,
    no [Float.rem] phase arithmetic.  The segment plan evaluates the
    schedule at exactly the accumulated times the plain loop would use,
    so both paths are bitwise identical. *)
let run ?(nthreads = 1) ?(stim = Stim.none) ?ckpt (d : t) ~(steps : int) :
    float =
  let total = ref 0.0 in
  (* periodic flight-recorder hook: captures never touch simulation
     state (buffers are copied), so checkpointed runs stay bitwise
     identical to plain ones; the wall-clock cost lands outside the
     compute-stage timing, matching how the bench reports it *)
  let maybe_ckpt () =
    match ckpt with
    | Some w when Obs.Recorder.due w ~step:d.steps_done ->
        Obs.Tracer.with_span "driver.checkpoint" (fun () ->
            ignore (Obs.Recorder.record w (capture d)))
    | _ -> ()
  in
  let phase (s : float) (n : int) : unit =
    for _ = 1 to n do
      let t0 = Unix.gettimeofday () in
      compute_stage ~nthreads d;
      total := !total +. (Unix.gettimeofday () -. t0);
      membrane_update_current d s;
      d.t_now <- d.t_now +. d.dt;
      d.steps_done <- d.steps_done + 1;
      maybe_ckpt ()
    done
  in
  if d.specialized then
    List.iter
      (fun (s, n) -> phase s n)
      (Stim.segments stim ~t0:d.t_now ~dt:d.dt ~steps)
  else
    for _ = 1 to steps do
      let t0 = Unix.gettimeofday () in
      compute_stage ~nthreads d;
      total := !total +. (Unix.gettimeofday () -. t0);
      membrane_update ~stim d;
      d.t_now <- d.t_now +. d.dt;
      d.steps_done <- d.steps_done + 1;
      maybe_ckpt ()
    done;
  !total

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let vm (d : t) (cell : int) : float = Float.Array.get (find_ext_buf d "Vm") cell

(** The raw external buffer ([ncells_pad] entries, padded lanes mirror
    the last real cell) — for solver stages that update Vm in place
    (e.g. the tissue monodomain diffusion step).
    @raise Driver_error when the model has no such external. *)
let ext_buffer (d : t) (name : string) : floatarray = find_ext_buf d name
let ext (d : t) (name : string) (cell : int) : float =
  Float.Array.get (find_ext_buf d name) cell

let state (d : t) (name : string) (cell : int) : float =
  match List.assoc_opt name d.gen.Codegen.Kernel.state_index with
  | None -> fail "model has no state variable %s" name
  | Some k ->
      let cfg = d.gen.Codegen.Kernel.cfg in
      Float.Array.get d.sv
        (Runtime.Layout.index cfg.Codegen.Config.layout
           ~nvars:d.gen.Codegen.Kernel.nvars ~ncells:d.ncells_pad ~cell
           ~var:k)

let set_ext (d : t) (name : string) (cell : int) (v : float) : unit =
  Float.Array.set (find_ext_buf d name) cell v

let set_state (d : t) (name : string) (cell : int) (v : float) : unit =
  match List.assoc_opt name d.gen.Codegen.Kernel.state_index with
  | None -> fail "model has no state variable %s" name
  | Some k ->
      let cfg = d.gen.Codegen.Kernel.cfg in
      Float.Array.set d.sv
        (Runtime.Layout.index cfg.Codegen.Config.layout
           ~nvars:d.gen.Codegen.Kernel.nvars ~ncells:d.ncells_pad ~cell
           ~var:k)
        v

(** Snapshot of every state + assigned external of one cell, for
    differential tests between configurations. *)
let snapshot (d : t) (cell : int) : (string * float) list =
  List.map (fun (n, _) -> (n, state d n cell)) d.gen.Codegen.Kernel.state_index
  @ List.filter_map
      (fun (n, buf) ->
        match M.find_ext d.gen.Codegen.Kernel.model n with
        | Some e when e.M.ext_assigned -> Some (n, Float.Array.get buf cell)
        | _ -> None)
      d.exts
