(** Simulation driver: the openCARP [bench] analogue.

    Owns the runtime data (cell state in the configured layout, external
    arrays, lookup tables, scratch rows), compiles the generated kernel,
    and advances the two-stage simulation: compute stage (the generated
    kernel, in parallel chunks) then the membrane update standing in for
    the solver stage. *)

exception Driver_error of string

type engine =
  | Fused  (** threaded-code engine with superinstructions (default) *)
  | Batched
      (** tile-batched engine: loop-inverted dispatch over coalesced
          scratch rows, fused LUT macro-op (bitwise-identical results) *)
  | Compiled  (** closure engine (one instance per thread) *)
  | Reference  (** tree-walking interpreter (slow; differential tests) *)
  | Native
      (** machine code: the lowered (and specialized) kernel is emitted
          as C, compiled by the system toolchain and [dlopen]ed
          ({!Codegen.Cache.native}).  When no C compiler is available
          (or the compile fails), {!create} degrades to {!Batched} with
          an {!Easyml.Diag} warning on stderr — never an exception *)

type t = {
  gen : Codegen.Kernel.t;
  ncells : int;
  ncells_pad : int;  (** padded to a multiple of the vector width *)
  dt : float;
  sv : floatarray;
  exts : (string * floatarray) list;
  params_buf : floatarray option;
  tables : floatarray list;
  engine : engine;
  tile : int;
      (** resolved batched-engine tile size in vector blocks (1 for the
          other engines); parallel chunk boundaries align to
          [tile × width] cells *)
  specialized : bool;
      (** the kernel was partially evaluated over this driver's run
          constants ([dt], padded cell count) and {!run} uses the
          stimulus phase split — bitwise identical either way *)
  native : (string -> Exec.Rt.v array -> Exec.Rt.v array) option;
      (** symbol lookup into the JIT-compiled shared object; [Some]
          exactly when [engine] is {!Native} *)
  registry : Exec.Rt.registry;
  proved : (int, unit) Hashtbl.t;
      (** compute-kernel access ops proved in-bounds by
          [Analysis.Bounds] under this driver's buffer contract; the
          engines compile them without runtime bounds checks *)
  mutable runners : (Exec.Rt.v array -> Exec.Rt.v array) array;
  mutable rows : floatarray list array;
  mutable t_now : float;
  mutable steps_done : int;
  mutable health : Obs.Health.t option;
}

val create :
  ?engine:engine ->
  ?elide:bool ->
  ?tile:int ->
  ?specialize:bool ->
  Codegen.Kernel.t ->
  ncells:int ->
  dt:float ->
  t
(** Allocate, initialize from the model's [_init] values and build the
    lookup tables (by running the generated [lut_init_*] functions).
    [engine] defaults to {!Fused}.  [elide] (default true) runs the
    bounds prover and drops runtime bounds checks on proved accesses —
    bitwise-identical results, fewer branches; [~elide:false] keeps
    every check.  [tile] sets the batched engine's tile size in vector
    blocks (default: the config's [tile] knob; 0 = auto-size for L1);
    ignored by the other engines, and results are bitwise identical for
    every value.  [specialize] (default true) partially evaluates the
    kernel over this driver's run constants — [dt] and the padded cell
    count become IR constants and the pass pipeline re-runs over them
    ({!Codegen.Cache.specialize}); bitwise identical, and ignored by the
    reference interpreter so differentials keep a pristine baseline.
    [~engine:Native] resolves the machine-code artifact eagerly: if no C
    toolchain is available or compilation fails, the driver is built on
    {!Batched} instead (one warning on stderr, no exception) — check the
    returned [engine] field to see which engine actually runs.
    @raise Driver_error on non-positive [ncells]/[dt] or negative
    [tile]. *)

val create_cached :
  ?engine:engine ->
  ?elide:bool ->
  ?tile:int ->
  ?specialize:bool ->
  ?optimize:bool ->
  Codegen.Config.t ->
  Easyml.Model.t ->
  ncells:int ->
  dt:float ->
  t
(** {!create}, generating the kernel through the shared
    {!Codegen.Cache} (repeat model × config pairs skip codegen). *)

val reset : t -> unit
(** Back to the initial state (also rebuilds tables). *)

val enable_health :
  ?cfg:Obs.Health.config -> ?warn:(string -> unit) -> t -> unit
(** Attach a numerical-health monitor ({!Obs.Health}): per-variable
    streaming min/max/mean, NaN/Inf counts, gate clamp-violation
    counters and a configurable membrane-potential watchdog, sampled
    inside the compute stage's chunks every [cfg.stride] steps.
    Reducers only read — monitored runs stay bitwise identical to
    unmonitored ones.  Under [cfg.policy = Abort] the compute stage
    raises {!Obs.Health.Tripped} on NaN / Inf / Vm-range trips; [Warn]
    (the default) reports each trip once through [warn], which defaults
    to an {!Easyml.Diag}-formatted line on stderr. *)

val disable_health : t -> unit
(** Detach the monitor (sampling stops immediately). *)

val health : t -> Obs.Health.t option
(** The attached monitor, e.g. for {!Obs.Health.unhealthy}. *)

val health_snapshot : t -> Obs.Health.snapshot option
(** Merged statistics from the attached monitor, if any. *)

val compute_stage : ?nthreads:int -> t -> unit
(** One pass of the generated kernel over all cells; chunk boundaries are
    aligned to the vector width, one kernel instance per thread. *)

val membrane_update : ?stim:Stim.t -> t -> unit
(** [Vm += dt (stim - Iion)] on every cell (when the model exposes the
    conventional Vm/Iion externals). *)

val step : ?nthreads:int -> ?stim:Stim.t -> t -> unit
(** compute stage + membrane update + clock tick. *)

val step_timed : ?nthreads:int -> ?stim:Stim.t -> t -> float
(** Like {!step}; returns the compute stage's wall-clock seconds. *)

val run :
  ?nthreads:int -> ?stim:Stim.t -> ?ckpt:Obs.Recorder.writer -> t ->
  steps:int -> float
(** [steps] full steps; returns total compute-stage seconds (the quantity
    the paper's figures report).  [?ckpt] attaches a flight recorder:
    after any step whose index is due ({!Obs.Recorder.due}) the driver
    {!capture}s itself and records the checkpoint.  Captures copy every
    buffer, so a checkpointed run is bitwise identical to a plain one;
    the write cost is excluded from the returned compute-stage time. *)

val tick : t -> unit
(** Advance the clock only (callers driving their own solver stage). *)

val time : t -> float
(** Current simulation time, ms. *)

val vm : t -> int -> float
val ext : t -> string -> int -> float

val ext_buffer : t -> string -> floatarray
(** The raw external buffer ([ncells_pad] entries; padded lanes mirror
    the last real cell).  Solver stages (e.g. the tissue monodomain
    diffusion step) read and update it in place.
    @raise Driver_error when the model has no such external. *)

val state : t -> string -> int -> float
val set_ext : t -> string -> int -> float -> unit
val set_state : t -> string -> int -> float -> unit

val snapshot : t -> int -> (string * float) list
(** Every state plus every assigned external of one cell, for differential
    tests between configurations. *)

(** {2 Flight recorder} *)

val engine_name : engine -> string
(** The CLI spelling: [fused], [batched], [closure], [interp],
    [native]. *)

val capture : t -> Obs.Recorder.checkpoint
(** Snapshot the driver's mutable state — state variables (all three
    layouts serialize through the same buffer), every external array,
    the parameter buffer, step index and simulation clock — plus the
    metadata to validate a restore (model, layout, width, population,
    [dt] bit pattern, engine).  Lookup tables are rebuilt
    deterministically at {!create}/{!reset} and therefore not captured.
    Buffers are copied: capturing never perturbs the run. *)

val restore : t -> Obs.Recorder.checkpoint -> (unit, Easyml.Diag.t) result
(** Load a {!capture}d checkpoint into a driver created with the same
    model, config, population and [dt].  Any mismatch (model, layout,
    width, cell counts, [dt] bits, missing or mis-sized sections) is a
    structured [checkpoint-mismatch] diagnostic and the driver is left
    unmodified enough to discard; on [Ok ()] the driver continues
    bitwise identically to the uninterrupted run.  Sections the driver
    does not own (e.g. tissue activation state) are ignored. *)
