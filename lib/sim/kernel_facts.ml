(** Driver-side facts about generated kernels, packaged for the
    dataflow analyses.

    The compute kernel's parameter list is a fixed ABI
    ([start; stop; ncells_pad; dt; t; sv] followed by the external
    buffers, the optional parameter buffer and the per-plan
    (table, row) pairs — see {!Codegen.Kernel}).  This module classifies
    each position, knows the exact length the driver allocates for every
    buffer parameter, and builds interval seeds for the loop bounds —
    the three ingredients the bounds prover ({!Analysis.Bounds}) and the
    race checker ({!Racecheck}) need to turn the generic analyses into
    kernel-specific proofs. *)

module K = Codegen.Kernel
module I = Analysis.Itv.I

type param_info =
  | Pstart
  | Pstop
  | Pncells  (** padded cell count *)
  | Pdt
  | Ptime
  | Psv  (** shared state buffer *)
  | Pext of int  (** shared external buffer [k] *)
  | Pparams  (** shared parameter buffer (when not folded) *)
  | Ptable of int  (** shared, read-only LUT table of plan [j] *)
  | Prow of int  (** per-thread LUT row scratch of plan [j] *)

let param_infos (gen : K.t) : param_info array =
  Array.of_list
    ([ Pstart; Pstop; Pncells; Pdt; Ptime; Psv ]
    @ List.mapi (fun k _ -> Pext k) gen.K.ext_order
    @ (if gen.K.param_order = [] then [] else [ Pparams ])
    @ List.concat
        (List.mapi (fun j _ -> [ Ptable j; Prow j ]) gen.K.lut_plans))

(** Is the buffer behind this compute parameter shared between the
    driver's worker threads?  Row scratch buffers are per-thread;
    everything else (state, externals, params, tables) is one shared
    allocation. *)
let shared (infos : param_info array) (i : int) : bool =
  i >= Array.length infos
  || match infos.(i) with Prow _ -> false | _ -> true

(** Guaranteed length (in doubles) of the buffer the driver passes for
    each memref parameter, mirroring the allocations in
    {!Driver.create}. *)
let len_of (gen : K.t) ~(ncells_pad : int) (infos : param_info array)
    (origin : Analysis.Interval.origin) : int option =
  match origin with
  | Analysis.Interval.Oparam i when i < Array.length infos -> (
      let cfg = gen.K.cfg in
      let w = cfg.Codegen.Config.width in
      let nvars = max 1 gen.K.nvars in
      match infos.(i) with
      | Psv ->
          Some
            (Runtime.Layout.size cfg.Codegen.Config.layout ~nvars
               ~ncells:ncells_pad)
      | Pext _ -> Some ncells_pad
      | Pparams -> Some (List.length gen.K.param_order)
      | Ptable j ->
          let plan = List.nth gen.K.lut_plans j in
          Some
            (max 1
               (Easyml.Model.lut_rows plan.Easyml.Lut_cones.spec
               * Easyml.Lut_cones.n_columns plan))
      | Prow j ->
          let plan = List.nth gen.K.lut_plans j in
          Some (max 1 (Easyml.Lut_cones.n_columns plan * w))
      | Pstart | Pstop | Pncells | Pdt | Ptime -> None)
  | _ -> None

(** Interval seeds for the compute function's scalar parameters.
    Without [range], [start] / [stop] cover every width-aligned chunk of
    [\[0, ncells_pad\]] (the facts {!Driver.compute_stage} guarantees
    for any thread count); with [range = (b, e)] they are the concrete
    bounds of one chunk. *)
let compute_seeds (gen : K.t) ~(ncells_pad : int) ?range
    (f : Ir.Func.func) : (Ir.Value.t * Analysis.Interval.v) list =
  let w = gen.K.cfg.Codegen.Config.width in
  match f.Ir.Func.f_params with
  | start :: stop :: ncells :: _ ->
      let start_i, stop_i =
        match range with
        | Some (b, e) -> (I.const b, I.const e)
        | None ->
            ( I.mk 0 (max 0 (ncells_pad - 1)) w 0,
              I.mk 0 ncells_pad w 0 )
      in
      [
        (start, Analysis.Interval.AI start_i);
        (stop, Analysis.Interval.AI stop_i);
        (ncells, Analysis.Interval.AI (I.const ncells_pad));
      ]
  | _ -> []

(** The compute function of a generated kernel module. *)
let compute_func (gen : K.t) : Ir.Func.func option =
  Ir.Func.find_func gen.K.modl K.compute_name

(** Bounds proofs for the compute kernel under the driver's buffer
    contract: every access op whose touched indices provably fit the
    buffers the driver allocates.  Returns an empty set when the module
    has no compute function. *)
let prove_bounds (gen : K.t) ~(ncells_pad : int) : Analysis.Bounds.proved =
  match compute_func gen with
  | None -> Hashtbl.create 1
  | Some f ->
      let infos = param_infos gen in
      Analysis.Bounds.prove_func
        ~seed:(compute_seeds gen ~ncells_pad f)
        ~len_of:(len_of gen ~ncells_pad infos)
        f
