(** Static race checker for the Domain-parallel compute stage.

    {!Driver.compute_stage} splits the padded cell range into
    width-aligned chunks and runs the same kernel concurrently on each.
    That is only sound if the chunks' {e write} footprints on shared
    buffers are pairwise disjoint (and no chunk writes what another
    reads).  This module proves it: the kernel's footprint summary
    ({!Analysis.Footprint}) is instantiated once per chunk with that
    chunk's concrete [start]/[stop], accesses on per-thread scratch
    (LUT row buffers) are discarded, and every pair of chunks is checked
    for an overlap between one side's writes and the other side's
    accesses on the same shared buffer.  Congruence intervals make this
    exact for the AoSoA address polynomial — chunk footprints on the
    state buffer tile it without slack, so the checker passes on a
    correct partition and fails loudly on e.g. a misaligned one. *)

module K = Codegen.Kernel
module I = Analysis.Itv.I
module Fp = Analysis.Footprint

type conflict = {
  chunk_a : int * int;  (** [start, stop) cell ranges *)
  chunk_b : int * int;
  origin : Analysis.Interval.origin;
  write_itv : I.t;  (** chunk A's write interval on [origin] *)
  other_itv : I.t;  (** chunk B's overlapping access *)
  other_is_write : bool;
}

let pp_conflict ppf (c : conflict) =
  let b0, e0 = c.chunk_a and b1, e1 = c.chunk_b in
  Fmt.pf ppf
    "chunk [%d,%d) writes %a[%a] which overlaps chunk [%d,%d)'s %s of [%a]"
    b0 e0 Analysis.Interval.pp_origin c.origin I.pp c.write_itv b1 e1
    (if c.other_is_write then "write" else "read")
    I.pp c.other_itv

(* Footprint of one chunk on shared buffers only, grouped by origin. *)
let chunk_footprint (gen : K.t) (f : Ir.Func.func)
    (infos : Kernel_facts.param_info array) ~(ncells_pad : int)
    ((b, e) : int * int) : (Analysis.Interval.origin * Fp.access list) list =
  let seed = Kernel_facts.compute_seeds gen ~ncells_pad ~range:(b, e) f in
  let _, accs = Fp.of_func ~seed f in
  accs
  |> List.filter (fun (a : Fp.access) ->
         match a.Fp.acc_origin with
         | Analysis.Interval.Oparam i -> Kernel_facts.shared infos i
         | Analysis.Interval.Oalloc _ ->
             (* local allocs live inside one kernel invocation; each
                chunk runs its own compiled instance *)
             false
         | Analysis.Interval.Ounknown -> true)
  |> Fp.by_origin

(* A write of A conflicts with any overlapping access of B on the same
   origin.  Unknown origins conservatively match every origin. *)
let conflicts_between ((ca, fa) : (int * int) * _) ((cb, fb) : (int * int) * _)
    : conflict list =
  List.concat_map
    (fun ((oa, aa) : Analysis.Interval.origin * Fp.access list) ->
      let wa = Fp.writes aa in
      if wa = [] then []
      else
        List.concat_map
          (fun ((ob, ab) : Analysis.Interval.origin * Fp.access list) ->
            let related =
              Analysis.Interval.origin_equal oa ob
              || oa = Analysis.Interval.Ounknown
              || ob = Analysis.Interval.Ounknown
            in
            if not related then []
            else
              List.concat_map
                (fun (w : Fp.access) ->
                  List.filter_map
                    (fun (x : Fp.access) ->
                      if I.overlap w.Fp.acc_itv x.Fp.acc_itv then
                        Some
                          {
                            chunk_a = ca;
                            chunk_b = cb;
                            origin = oa;
                            write_itv = w.Fp.acc_itv;
                            other_itv = x.Fp.acc_itv;
                            other_is_write = x.Fp.acc_write;
                          }
                      else None)
                    ab)
                wa)
          fb)
    fa

(** Check an explicit partition of [\[0, ncells_pad)] into cell ranges.
    [Ok n] reports the number of chunk pairs checked; [Error cs] lists
    every conflicting pair found (non-empty). *)
let check_partition (gen : K.t) ~(ncells_pad : int)
    (chunks : (int * int) list) : (int, conflict list) result =
  match Kernel_facts.compute_func gen with
  | None -> Ok 0
  | Some f ->
      let infos = Kernel_facts.param_infos gen in
      let fps =
        List.map
          (fun c -> (c, chunk_footprint gen f infos ~ncells_pad c))
          (List.filter (fun (b, e) -> e > b) chunks)
      in
      let conflicts = ref [] in
      let pairs = ref 0 in
      let rec go = function
        | [] -> ()
        | a :: rest ->
            List.iter
              (fun b ->
                incr pairs;
                conflicts :=
                  !conflicts @ conflicts_between a b @ conflicts_between b a)
              rest;
            go rest
      in
      go fps;
      if !conflicts = [] then Ok !pairs else Error !conflicts

(** Check the exact partition {!Driver.compute_stage} uses for
    [nthreads] domains: width-aligned blocks split by
    {!Runtime.Parallel.chunks}. *)
let check (gen : K.t) ~(ncells : int) ~(nthreads : int) :
    (int, conflict list) result =
  let w = gen.K.cfg.Codegen.Config.width in
  let ncells_pad = (ncells + w - 1) / w * w in
  let nblocks = ncells_pad / w in
  let chunks =
    Runtime.Parallel.chunks ~nthreads ~lo:0 ~hi:nblocks
    |> List.map (fun (blo, bhi) -> (blo * w, bhi * w))
  in
  check_partition gen ~ncells_pad chunks

(** Check the partition the {e batched} engine's compute stage uses for
    [nthreads] domains: chunk boundaries fall on whole tiles of
    [tile × width] cells (the last tile may be clamped to
    [ncells_pad]).  [tile = 1] degenerates to {!check}. *)
let check_tiles (gen : K.t) ~(ncells : int) ~(nthreads : int) ~(tile : int)
    : (int, conflict list) result =
  let w = gen.K.cfg.Codegen.Config.width in
  let ncells_pad = (ncells + w - 1) / w * w in
  let t = max 1 tile in
  let uw = t * w in
  let nunits = (ncells_pad + uw - 1) / uw in
  let chunks =
    Runtime.Parallel.chunks ~nthreads ~lo:0 ~hi:nunits
    |> List.map (fun (ulo, uhi) -> (ulo * uw, min (uhi * uw) ncells_pad))
  in
  check_partition gen ~ncells_pad chunks

let errors_to_string (cs : conflict list) : string =
  Fmt.str "@[<v>%a@]" (Fmt.list pp_conflict) cs

(** Raise {!Driver.Driver_error} unless the partition is provably
    race-free. *)
let check_exn (gen : K.t) ~(ncells : int) ~(nthreads : int) : unit =
  match check gen ~ncells ~nthreads with
  | Ok _ -> ()
  | Error cs ->
      raise
        (Driver.Driver_error
           (Fmt.str "parallel compute stage is not provably race-free:@ %s"
              (errors_to_string cs)))
