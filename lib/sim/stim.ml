(** Stimulus protocols.

    openCARP's [bench] applies a transmembrane current pulse to elicit
    action potentials; we reproduce the same shape: a rectangular pulse of
    given amplitude, start, duration, and optional period (S1 pacing). *)

type t = {
  amplitude : float;  (** current amplitude (model units, e.g. uA/cm^2) *)
  start : float;  (** ms *)
  duration : float;  (** ms *)
  period : float option;  (** repeat every [period] ms when set *)
}

let none = { amplitude = 0.0; start = 0.0; duration = 0.0; period = None }

let default =
  { amplitude = 60.0; start = 1.0; duration = 2.0; period = Some 1000.0 }

let make ?(amplitude = 60.0) ?(start = 1.0) ?(duration = 2.0) ?period () =
  { amplitude; start; duration; period }

(** Stimulus current at time [t] (ms). *)
let at (s : t) (t : float) : float =
  if s.amplitude = 0.0 then 0.0
  else
    let phase =
      match s.period with
      | Some p when p > 0.0 && t >= s.start ->
          s.start +. Float.rem (t -. s.start) p
      | _ -> t
    in
    if phase >= s.start && phase < s.start +. s.duration then s.amplitude
    else 0.0

(* ------------------------------------------------------------------ *)
(* Spatial addressing                                                  *)
(* ------------------------------------------------------------------ *)

(** Per-cell amplitude scaling for tissue-scale protocols.  [Uniform]
    applies the pulse to every cell unscaled — {!at_cell} returns exactly
    what {!at} returns, bit for bit, so single-cell callers can be lifted
    to the spatial form without perturbing any trajectory.  [Weights]
    scales the pulse per cell (0 outside the stimulated region). *)
type mask = Uniform | Weights of floatarray

type spatial = { pulse : t; mask : mask }

let uniform (s : t) : spatial = { pulse = s; mask = Uniform }

let weighted (s : t) (w : floatarray) : spatial = { pulse = s; mask = Weights w }

(** Rectangular region on a linearized population: weight 1 on cells
    [lo, hi), 0 elsewhere. *)
let region (s : t) ~(n : int) ~(lo : int) ~(hi : int) : spatial =
  if lo < 0 || hi > n || lo > hi then
    invalid_arg "Stim.region: need 0 <= lo <= hi <= n";
  let w = Float.Array.make n 0.0 in
  for c = lo to hi - 1 do
    Float.Array.set w c 1.0
  done;
  { pulse = s; mask = Weights w }

(** Stimulus current for one cell at time [t].  With a [Uniform] mask
    this is {e bitwise} [at s.pulse t] — no scaling is applied at all. *)
let at_cell (s : spatial) ~(t : float) ~(cell : int) : float =
  match s.mask with
  | Uniform -> at s.pulse t
  | Weights w ->
      let a = at s.pulse t in
      if a = 0.0 then 0.0 else a *. Float.Array.get w cell

(** Phase plan for a fixed-step run: the run-length encoding
    [(current, steps); …] of the stimulus current over [steps] steps
    starting at [t0], evaluated at exactly the accumulated time sequence
    [t0, t0 +. dt, (t0 +. dt) +. dt, …] the driver produces — so a time
    loop split into constant-current phases is bitwise identical to one
    that calls {!at} every step.  A pulse train yields short segments at
    each edge and two long branch-free phases per period. *)
let segments (s : t) ~(t0 : float) ~(dt : float) ~(steps : int) :
    (float * int) list =
  if steps <= 0 then []
  else begin
    let t = ref t0 in
    let cur = ref (at s !t) and count = ref 0 in
    let acc = ref [] in
    for _ = 1 to steps do
      let v = at s !t in
      if Float.equal v !cur then incr count
      else begin
        acc := (!cur, !count) :: !acc;
        cur := v;
        count := 1
      end;
      t := !t +. dt
    done;
    List.rev ((!cur, !count) :: !acc)
  end
