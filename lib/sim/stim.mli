(** Stimulus protocols: rectangular current pulses with optional periodic
    (S1) repetition, matching openCARP's bench. *)

type t = {
  amplitude : float;
  start : float;  (** ms *)
  duration : float;  (** ms *)
  period : float option;  (** repeat every [period] ms when set *)
}

val none : t
val default : t
(** 60 uA at 1 ms for 2 ms, repeating every second. *)

val make :
  ?amplitude:float -> ?start:float -> ?duration:float -> ?period:float ->
  unit -> t

val at : t -> float -> float
(** Stimulus current at time [t] (ms). *)

type mask = Uniform | Weights of floatarray
(** Per-cell amplitude scaling: [Uniform] applies the pulse to every
    cell unscaled; [Weights w] multiplies the pulse current by
    [w.(cell)] (0 outside the stimulated region). *)

type spatial = { pulse : t; mask : mask }
(** A spatially addressed stimulus: one pulse schedule plus a per-cell
    amplitude mask, the building block of tissue protocols
    (S1 planar strips, S1–S2 cross-field, restitution trains). *)

val uniform : t -> spatial
val weighted : t -> floatarray -> spatial

val region : t -> n:int -> lo:int -> hi:int -> spatial
(** Weight 1 on cells [lo, hi) of an [n]-cell population, 0 elsewhere.
    @raise Invalid_argument unless [0 <= lo <= hi <= n]. *)

val at_cell : spatial -> t:float -> cell:int -> float
(** Stimulus current for one cell at time [t].  With a [Uniform] mask
    this is {e bitwise} identical to [at s.pulse t] — the scalar path is
    untouched by the spatial lifting. *)

val segments : t -> t0:float -> dt:float -> steps:int -> (float * int) list
(** Run-length encoding [(current, steps); …] of the stimulus over a
    fixed-step run, evaluated at exactly the accumulated time sequence
    the driver produces — a time loop split into these constant-current
    phases is bitwise identical to calling {!at} every step.  The
    segment step counts sum to [steps]. *)
