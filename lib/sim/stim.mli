(** Stimulus protocols: rectangular current pulses with optional periodic
    (S1) repetition, matching openCARP's bench. *)

type t = {
  amplitude : float;
  start : float;  (** ms *)
  duration : float;  (** ms *)
  period : float option;  (** repeat every [period] ms when set *)
}

val none : t
val default : t
(** 60 uA at 1 ms for 2 ms, repeating every second. *)

val make :
  ?amplitude:float -> ?start:float -> ?duration:float -> ?period:float ->
  unit -> t

val at : t -> float -> float
(** Stimulus current at time [t] (ms). *)

val segments : t -> t0:float -> dt:float -> steps:int -> (float * int) list
(** Run-length encoding [(current, steps); …] of the stimulus over a
    fixed-step run, evaluated at exactly the accumulated time sequence
    the driver produces — a time loop split into these constant-current
    phases is bitwise identical to calling {!at} every step.  The
    segment step counts sum to [steps]. *)
