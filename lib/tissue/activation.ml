(** Per-cell upstroke detection and activation-map output. *)

type t = {
  n : int;
  threshold : float;
  reset : float;
  first : float array;  (* first activation time, nan = never *)
  react : int array;  (* activations beyond the first *)
  prev : float array;  (* previous Vm sample *)
  armed : bool array;  (* repolarized below [reset] since last upstroke *)
  mutable primed : bool;
}

let create ?(threshold = -20.0) ?(reset = -60.0) ~(n : int) () : t =
  if n <= 0 then invalid_arg "Activation.create: need n > 0";
  if reset >= threshold then
    invalid_arg "Activation.create: reset must lie below threshold";
  {
    n;
    threshold;
    reset;
    first = Array.make n Float.nan;
    react = Array.make n 0;
    prev = Array.make n Float.nan;
    armed = Array.make n false;
    primed = false;
  }

let observe (a : t) ~(t_prev : float) ~(t_now : float) ~(vm : floatarray) :
    unit =
  if Float.Array.length vm < a.n then
    invalid_arg "Activation.observe: vm shorter than the recorder";
  if not a.primed then begin
    for i = 0 to a.n - 1 do
      let v = Float.Array.get vm i in
      a.prev.(i) <- v;
      a.armed.(i) <- v < a.threshold
    done;
    a.primed <- true
  end
  else
    for i = 0 to a.n - 1 do
      let v_prev = a.prev.(i) and v = Float.Array.get vm i in
      if a.armed.(i) && v_prev < a.threshold && v >= a.threshold then begin
        let t_act =
          t_prev
          +. (t_now -. t_prev) *. (a.threshold -. v_prev) /. (v -. v_prev)
        in
        if Float.is_nan a.first.(i) then a.first.(i) <- t_act
        else a.react.(i) <- a.react.(i) + 1;
        a.armed.(i) <- false
      end
      else if (not a.armed.(i)) && v < a.reset then a.armed.(i) <- true;
      a.prev.(i) <- v
    done

(* Flight-recorder support: the full detector state as float buffers
   (reactivation counts and armed flags encode exactly in doubles), so a
   tissue checkpoint restores activation maps bit-for-bit — including
   NaN "never activated" markers and the un-primed state. *)
let export_state (a : t) : (string * floatarray) list * bool =
  let of_floats arr = Float.Array.init a.n (Array.get arr) in
  ( [
      ("act:first", of_floats a.first);
      ("act:prev", of_floats a.prev);
      ("act:react", Float.Array.init a.n (fun i -> float_of_int a.react.(i)));
      ( "act:armed",
        Float.Array.init a.n (fun i -> if a.armed.(i) then 1.0 else 0.0) );
    ],
    a.primed )

let import_state (a : t) ~(sections : (string * floatarray) list)
    ~(primed : bool) : (unit, string) result =
  let find name =
    match List.assoc_opt name sections with
    | None -> Error (Printf.sprintf "missing section %s" name)
    | Some data when Float.Array.length data <> a.n ->
        Error
          (Printf.sprintf "section %s holds %d value(s), recorder tracks %d"
             name (Float.Array.length data) a.n)
    | Some data -> Ok data
  in
  let ( let* ) = Result.bind in
  let* first = find "act:first" in
  let* prev = find "act:prev" in
  let* react = find "act:react" in
  let* armed = find "act:armed" in
  for i = 0 to a.n - 1 do
    a.first.(i) <- Float.Array.get first i;
    a.prev.(i) <- Float.Array.get prev i;
    a.react.(i) <- int_of_float (Float.Array.get react i);
    a.armed.(i) <- Float.Array.get armed i <> 0.0
  done;
  a.primed <- primed;
  Ok ()

let first_time (a : t) (cell : int) : float = a.first.(cell)
let reactivations (a : t) (cell : int) : int = a.react.(cell)

let activated (a : t) : int =
  Array.fold_left (fun k t -> if Float.is_finite t then k + 1 else k) 0 a.first

let reactivated (a : t) : int =
  Array.fold_left (fun k r -> if r > 0 then k + 1 else k) 0 a.react

let conduction_velocity (a : t) (g : Geometry.t) ~(from_cell : int)
    ~(to_cell : int) : float option =
  let ta = a.first.(from_cell) and tb = a.first.(to_cell) in
  if Float.is_finite ta && Float.is_finite tb && tb > ta then begin
    let xa, ya = Geometry.coords g from_cell
    and xb, yb = Geometry.coords g to_cell in
    let dist =
      Geometry.dx g
      *. Float.hypot (float_of_int (xb - xa)) (float_of_int (yb - ya))
    in
    Some (dist /. (tb -. ta))
  end
  else None

let to_csv (a : t) (g : Geometry.t) : string =
  let b = Buffer.create (a.n * 24) in
  Buffer.add_string b "cell,x,y,activation_ms,reactivations\n";
  for i = 0 to a.n - 1 do
    let x, y = Geometry.coords g i in
    Buffer.add_string b
      (Printf.sprintf "%d,%d,%d,%s,%d\n" i x y
         (if Float.is_finite a.first.(i) then
            Printf.sprintf "%.6f" a.first.(i)
          else "nan")
         a.react.(i))
  done;
  Buffer.contents b

let to_json ?(cv : float option) (a : t) (g : Geometry.t) : string =
  let b = Buffer.create (a.n * 16) in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"geometry\": \"%s\",\n" (Geometry.describe g));
  Buffer.add_string b
    (Printf.sprintf "  \"nx\": %d,\n  \"ny\": %d,\n  \"dx_cm\": %g,\n"
       (Geometry.nx g) (Geometry.ny g) (Geometry.dx g));
  Buffer.add_string b
    (Printf.sprintf "  \"threshold_mv\": %g,\n" a.threshold);
  Buffer.add_string b (Printf.sprintf "  \"activated\": %d,\n" (activated a));
  Buffer.add_string b
    (Printf.sprintf "  \"reactivated\": %d,\n" (reactivated a));
  (match cv with
  | Some v ->
      Buffer.add_string b
        (Printf.sprintf "  \"conduction_velocity_cm_ms\": %.9g,\n" v)
  | None -> ());
  Buffer.add_string b "  \"activation_ms\": [";
  for i = 0 to a.n - 1 do
    if i > 0 then Buffer.add_string b ", ";
    Buffer.add_string b
      (if Float.is_finite a.first.(i) then Printf.sprintf "%.6f" a.first.(i)
       else "null")
  done;
  Buffer.add_string b "],\n  \"reactivations\": [";
  for i = 0 to a.n - 1 do
    if i > 0 then Buffer.add_string b ", ";
    Buffer.add_string b (string_of_int a.react.(i))
  done;
  Buffer.add_string b "]\n}\n";
  Buffer.contents b
