(** Activation-map measurement: per-cell upstroke detection with linear
    time interpolation, reactivation counting (the reentry indicator)
    and conduction-velocity estimation.

    Observation only reads the membrane potential — recording an
    activation map never perturbs the simulated trajectory. *)

type t

val create : ?threshold:float -> ?reset:float -> n:int -> unit -> t
(** A recorder for [n] cells.  A cell {e activates} when Vm crosses
    [threshold] (default −20 mV) upward; after activating it must
    repolarize below [reset] (default −60 mV) before a further upward
    crossing counts as a {e re}activation.
    @raise Invalid_argument when [n <= 0] or [reset >= threshold]. *)

val observe : t -> t_prev:float -> t_now:float -> vm:floatarray -> unit
(** Feed the post-step membrane potential ([vm] may be padded; only the
    first [n] entries are read).  The first call primes the previous
    sample and detects nothing.  Crossing times are linearly
    interpolated: [t_act = t_prev + (t_now − t_prev)·(θ − v_prev)/(v −
    v_prev)]. *)

val export_state : t -> (string * floatarray) list * bool
(** Flight-recorder serialization: the detector state as named float
    buffers ([act:first], [act:prev], [act:react], [act:armed] — counts
    and flags encode exactly in doubles) plus the primed flag.  Buffers
    are copies; exporting never perturbs detection. *)

val import_state :
  t -> sections:(string * floatarray) list -> primed:bool ->
  (unit, string) result
(** Restore a state exported from a recorder of the same size.  A
    missing or mis-sized section is an [Error] describing it (the
    recorder is then partially overwritten and should be discarded). *)

val first_time : t -> int -> float
(** First activation time of one cell, ms ([nan] when never). *)

val reactivations : t -> int -> int
val activated : t -> int
(** Cells whose first upstroke was detected. *)

val reactivated : t -> int
(** Cells that re-activated after full repolarization — a sustained
    reentrant wave re-excites tissue, so a nonzero count after the
    stimuli ended is the spiral-wave/reentry signature. *)

val conduction_velocity :
  t -> Geometry.t -> from_cell:int -> to_cell:int -> float option
(** Euclidean distance between the two cells over their first-activation
    time difference, cm/ms; [None] unless both activated in order. *)

val to_csv : t -> Geometry.t -> string
(** [cell,x,y,activation_ms,reactivations] rows (activation [nan] when
    never), with a header line. *)

val to_json : ?cv:float -> t -> Geometry.t -> string
(** JSON object: geometry, threshold, activated/reactivated counts,
    optional conduction velocity, per-cell activation times ([null]
    when never) and reactivation counts. *)
