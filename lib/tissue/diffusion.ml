(** Implicit diffusion operator: [(I − dt·λ·L) x = b] with λ = σ/dx²
    and L the Neumann-boundary Laplacian of the geometry. *)

type op =
  | Tri of { sub : floatarray; diag : floatarray; sup : floatarray }
  | Csr of Solver.Sparse.t

type t = { n : int; op : op; mutable last_cg : Solver.Cg.stats option }

let cg_tol = 1e-12
let cg_max_iters = 10_000

let assemble_cable ~(n : int) ~(lambda : float) : op =
  let sub = Float.Array.make n 0.0
  and diag = Float.Array.make n 0.0
  and sup = Float.Array.make n 0.0 in
  for i = 0 to n - 1 do
    let left = i > 0 and right = i < n - 1 in
    let deg = (if left then 1.0 else 0.0) +. if right then 1.0 else 0.0 in
    Float.Array.set sub i (if left then -.lambda else 0.0);
    Float.Array.set sup i (if right then -.lambda else 0.0);
    Float.Array.set diag i (1.0 +. (lambda *. deg))
  done;
  Tri { sub; diag; sup }

let assemble_sheet ~(nx : int) ~(ny : int) ~(lambda : float) : op =
  (* 5-point stencil, Neumann boundaries: diagonal 1 + λ·degree,
     −λ per edge; row-major cell = y·nx + x *)
  let triplets = ref [] in
  for y = 0 to ny - 1 do
    for x = 0 to nx - 1 do
      let i = (y * nx) + x in
      let neighbors =
        List.filter_map
          (fun (dx, dy) ->
            let x' = x + dx and y' = y + dy in
            if x' >= 0 && x' < nx && y' >= 0 && y' < ny then
              Some ((y' * nx) + x')
            else None)
          [ (-1, 0); (1, 0); (0, -1); (0, 1) ]
      in
      triplets :=
        (i, i, 1.0 +. (lambda *. float_of_int (List.length neighbors)))
        :: !triplets;
      List.iter
        (fun j -> triplets := (i, j, -.lambda) :: !triplets)
        neighbors
    done
  done;
  Csr (Solver.Sparse.of_triplets ~n:(nx * ny) !triplets)

let assemble (g : Geometry.t) ~(sigma : float) ~(dt : float) : t =
  if sigma < 0.0 then invalid_arg "Diffusion.assemble: sigma must be >= 0";
  if dt <= 0.0 then invalid_arg "Diffusion.assemble: dt must be positive";
  let dx = Geometry.dx g in
  let lambda = dt *. sigma /. (dx *. dx) in
  let op =
    match g with
    | Geometry.Cable { n; _ } -> assemble_cable ~n ~lambda
    | Geometry.Sheet { nx; ny; _ } -> assemble_sheet ~nx ~ny ~lambda
  in
  { n = Geometry.cells g; op; last_cg = None }

let solve (t : t) (b : floatarray) : floatarray =
  if Float.Array.length b <> t.n then
    invalid_arg "Diffusion.solve: rhs length mismatch";
  match t.op with
  | Tri { sub; diag; sup } -> Solver.Tridiag.solve ~a:sub ~b:diag ~c:sup ~d:b
  | Csr m ->
      let x, stats = Solver.Cg.solve ~tol:cg_tol ~max_iters:cg_max_iters m b in
      t.last_cg <- Some stats;
      x

let matrix (t : t) : Solver.Sparse.t =
  match t.op with
  | Csr m -> m
  | Tri { sub; diag; sup } ->
      let triplets = ref [] in
      for i = 0 to t.n - 1 do
        triplets := (i, i, Float.Array.get diag i) :: !triplets;
        if i > 0 then
          triplets := (i, i - 1, Float.Array.get sub i) :: !triplets;
        if i < t.n - 1 then
          triplets := (i, i + 1, Float.Array.get sup i) :: !triplets
      done;
      Solver.Sparse.of_triplets ~n:t.n !triplets

let cg_stats (t : t) : Solver.Cg.stats option = t.last_cg
