(** Implicit diffusion operator for the monodomain split step.

    Assembles and solves [(I − dt·λ·L) x = b] where [L] is the
    Neumann-boundary graph Laplacian of the geometry and
    [λ = σ/dx²] — tridiagonal Thomas on a {!Geometry.Cable}, 5-point
    CSR with Jacobi-preconditioned CG on a {!Geometry.Sheet}. *)

type t

val assemble : Geometry.t -> sigma:float -> dt:float -> t
(** The factored operator for one diffusion (sub)step of length [dt]
    with effective diffusivity [sigma] (cm²/ms).
    @raise Invalid_argument when [sigma < 0] or [dt <= 0]. *)

val solve : t -> floatarray -> floatarray
(** [solve op b] returns [x] with [(I − dt·λ·L) x = b].  The direct 1-D
    path is exact (Thomas); the CG path iterates to relative residual
    [1e-12] (documented tolerance — far below the splitting error) and
    is deterministic, so repeated runs are bitwise identical. *)

val matrix : t -> Solver.Sparse.t
(** The operator as CSR (cross-validation against the direct solve). *)

val cg_stats : t -> Solver.Cg.stats option
(** Convergence statistics of the most recent CG solve ([None] on the
    tridiagonal path or before the first solve). *)
