(** Tissue geometries: 1-D cable or 2-D sheet with uniform spacing. *)

type t =
  | Cable of { n : int; dx : float }
  | Sheet of { nx : int; ny : int; dx : float }

let cable ~(n : int) ~(dx : float) : t =
  if n < 2 then invalid_arg "Geometry.cable: need at least two nodes";
  if dx <= 0.0 then invalid_arg "Geometry.cable: dx must be positive";
  Cable { n; dx }

let sheet ~(nx : int) ~(ny : int) ~(dx : float) : t =
  if nx < 2 || ny < 2 then
    invalid_arg "Geometry.sheet: need at least 2x2 nodes";
  if dx <= 0.0 then invalid_arg "Geometry.sheet: dx must be positive";
  Sheet { nx; ny; dx }

let cells = function Cable { n; _ } -> n | Sheet { nx; ny; _ } -> nx * ny
let dx = function Cable { dx; _ } | Sheet { dx; _ } -> dx
let nx = function Cable { n; _ } -> n | Sheet { nx; _ } -> nx
let ny = function Cable _ -> 1 | Sheet { ny; _ } -> ny

let index (g : t) ~(x : int) ~(y : int) : int =
  match g with
  | Cable { n; _ } ->
      if x < 0 || x >= n || y <> 0 then invalid_arg "Geometry.index";
      x
  | Sheet { nx; ny; _ } ->
      if x < 0 || x >= nx || y < 0 || y >= ny then
        invalid_arg "Geometry.index";
      (y * nx) + x

let coords (g : t) (cell : int) : int * int =
  match g with
  | Cable _ -> (cell, 0)
  | Sheet { nx; _ } -> (cell mod nx, cell / nx)

let describe = function
  | Cable { n; dx } -> Printf.sprintf "cable n=%d dx=%gcm" n dx
  | Sheet { nx; ny; dx } -> Printf.sprintf "sheet %dx%d dx=%gcm" nx ny dx
