(** Tissue geometries: the spatial discretizations the monodomain
    subsystem runs on — a 1-D cable (fibre) or a 2-D sheet, both with
    uniform node spacing and no-flux (Neumann) boundaries. *)

type t =
  | Cable of { n : int; dx : float }
      (** [n] nodes along a fibre, spacing [dx] cm *)
  | Sheet of { nx : int; ny : int; dx : float }
      (** [nx × ny] nodes, row-major ([cell = y·nx + x]), spacing [dx] cm *)

val cable : n:int -> dx:float -> t
(** @raise Invalid_argument when [n < 2] or [dx <= 0]. *)

val sheet : nx:int -> ny:int -> dx:float -> t
(** @raise Invalid_argument when [nx < 2], [ny < 2] or [dx <= 0]. *)

val cells : t -> int
(** Total node count. *)

val dx : t -> float

val nx : t -> int
(** Nodes along x ([n] for a cable). *)

val ny : t -> int
(** Nodes along y (1 for a cable). *)

val index : t -> x:int -> y:int -> int
(** Row-major cell index.
    @raise Invalid_argument out of range (cables require [y = 0]). *)

val coords : t -> int -> int * int
(** Inverse of {!index}: [cell -> (x, y)]. *)

val describe : t -> string
(** One-line human-readable description, e.g. ["cable n=256 dx=0.01cm"]. *)
