(** Operator-split monodomain engine: generated ionic kernel × implicit
    diffusion.  See the interface for the splitting conventions. *)

module Driver = Sim.Driver
module Stim = Sim.Stim

type splitting = Godunov | Strang

type config = {
  sigma : float;
  cm : float;
  splitting : splitting;
  threshold : float;
  reset : float;
  block_check_ms : float option;
  probes : (int * int) option;
}

let default_config : config =
  {
    sigma = 0.001;
    cm = 1.0;
    splitting = Godunov;
    threshold = -20.0;
    reset = -60.0;
    block_check_ms = None;
    probes = None;
  }

type t = {
  driver : Driver.t;
  geom : Geometry.t;
  cfg : config;
  nthreads : int;
  protocol : Protocol.t;
  op_full : Diffusion.t;  (* Godunov: the dt operator *)
  op_half : Diffusion.t;  (* Strang: the dt/2 operator *)
  act : Activation.t;
  vm_buf : floatarray;  (* the driver's padded Vm external, in place *)
  iion_buf : floatarray;
  rhs : floatarray;  (* scratch, real cells only *)
  stimulated : bool array;  (* union of the protocol's mask supports *)
  probe_a : int;
  probe_b : int;
  mutable block_checked : bool;
  mutable block_tripped : bool;
}

let default_probes (g : Geometry.t) : int * int =
  let nx = Geometry.nx g in
  let y = Geometry.ny g / 2 in
  let clamp x = max 0 (min (nx - 1) x) in
  ( Geometry.index g ~x:(clamp (nx / 5)) ~y,
    Geometry.index g ~x:(clamp (4 * nx / 5)) ~y )

(* cells any protocol pulse can reach (nonzero mask weight) *)
let stimulated_cells (n : int) (p : Protocol.t) : bool array =
  let s = Array.make n false in
  List.iter
    (fun (sp : Stim.spatial) ->
      match sp.Stim.mask with
      | Stim.Uniform -> Array.fill s 0 n true
      | Stim.Weights w ->
          for i = 0 to min n (Float.Array.length w) - 1 do
            if Float.Array.get w i <> 0.0 then s.(i) <- true
          done)
    p.Protocol.stims;
  s

let create ?engine ?tile ?specialize ?(config = default_config)
    ?(nthreads = 1) (gen : Codegen.Kernel.t) ~(geom : Geometry.t)
    ~(dt : float) ~(protocol : Protocol.t) : t =
  let n = Geometry.cells geom in
  let driver = Driver.create ?engine ?tile ?specialize gen ~ncells:n ~dt in
  let act =
    Activation.create ~threshold:config.threshold ~reset:config.reset ~n ()
  in
  let vm_buf = Driver.ext_buffer driver "Vm" in
  let iion_buf = Driver.ext_buffer driver "Iion" in
  let probe_a, probe_b =
    match config.probes with Some p -> p | None -> default_probes geom
  in
  (* prime the recorder with the initial (resting) potential *)
  Activation.observe act ~t_prev:0.0 ~t_now:0.0 ~vm:vm_buf;
  {
    driver;
    geom;
    cfg = config;
    nthreads;
    protocol;
    op_full = Diffusion.assemble geom ~sigma:config.sigma ~dt;
    op_half = Diffusion.assemble geom ~sigma:config.sigma ~dt:(dt /. 2.0);
    act;
    vm_buf;
    iion_buf;
    rhs = Float.Array.make n 0.0;
    stimulated = stimulated_cells n protocol;
    probe_a;
    probe_b;
    block_checked = false;
    block_tripped = false;
  }

let driver (m : t) = m.driver
let geometry (m : t) = m.geom
let activation (m : t) = m.act
let protocol (m : t) = m.protocol
let time (m : t) = Driver.time m.driver
let probes (m : t) = (m.probe_a, m.probe_b)

(* write the diffusion solution back into the driver's padded Vm buffer
   (padded lanes mirror the last real cell — the driver's invariant) *)
let write_back (m : t) (x : floatarray) : unit =
  let n = Geometry.cells m.geom in
  Float.Array.blit x 0 m.vm_buf 0 n;
  let last = Float.Array.get x (n - 1) in
  for i = n to Float.Array.length m.vm_buf - 1 do
    Float.Array.set m.vm_buf i last
  done

let check_block (m : t) : unit =
  match m.cfg.block_check_ms with
  | Some check when (not m.block_checked) && time m >= check ->
      m.block_checked <- true;
      let n = Geometry.cells m.geom in
      let escaped = ref false in
      let first_outside = ref (-1) in
      for i = 0 to n - 1 do
        if not m.stimulated.(i) then begin
          if !first_outside < 0 then first_outside := i;
          if Float.is_finite (Activation.first_time m.act i) then
            escaped := true
        end
      done;
      if (not !escaped) && !first_outside >= 0 then begin
        m.block_tripped <- true;
        match Driver.health m.driver with
        | Some h ->
            Obs.Health.note_block h ~cell:!first_outside
              ~step:m.driver.Driver.steps_done;
            Obs.Health.enforce h
        | None -> ()
      end
  | _ -> ()

let step (m : t) : unit =
  let n = Geometry.cells m.geom in
  let t0 = Driver.time m.driver in
  let dt = m.driver.Driver.dt in
  (match m.cfg.splitting with
  | Godunov ->
      (* (1) ionic stage at the current state *)
      Obs.Tracer.with_span "tissue.ionic" (fun () ->
          Driver.compute_stage ~nthreads:m.nthreads m.driver);
      (* (2) exchange: fold reaction and stimulus into the rhs … *)
      Obs.Tracer.with_span "tissue.exchange" (fun () ->
          for i = 0 to n - 1 do
            let istim = Protocol.current m.protocol ~t:t0 ~cell:i in
            Float.Array.set m.rhs i
              (Float.Array.get m.vm_buf i
              +. dt
                 *. (istim -. Float.Array.get m.iion_buf i)
                 /. m.cfg.cm)
          done);
      (* … then (3) the implicit diffusion solve *)
      Obs.Tracer.with_span "tissue.diffusion" (fun () ->
          write_back m (Diffusion.solve m.op_full m.rhs))
  | Strang ->
      (* (1) implicit diffusion over dt/2 *)
      Obs.Tracer.with_span "tissue.diffusion" (fun () ->
          Float.Array.blit m.vm_buf 0 m.rhs 0 n;
          write_back m (Diffusion.solve m.op_half m.rhs));
      (* (2) full-dt ionic stage + explicit reaction update *)
      Obs.Tracer.with_span "tissue.ionic" (fun () ->
          Driver.compute_stage ~nthreads:m.nthreads m.driver);
      Obs.Tracer.with_span "tissue.exchange" (fun () ->
          for i = 0 to n - 1 do
            let istim = Protocol.current m.protocol ~t:t0 ~cell:i in
            Float.Array.set m.vm_buf i
              (Float.Array.get m.vm_buf i
              +. dt
                 *. (istim -. Float.Array.get m.iion_buf i)
                 /. m.cfg.cm)
          done);
      (* (3) implicit diffusion over dt/2 *)
      Obs.Tracer.with_span "tissue.diffusion" (fun () ->
          Float.Array.blit m.vm_buf 0 m.rhs 0 n;
          write_back m (Diffusion.solve m.op_half m.rhs)));
  Driver.tick m.driver;
  Activation.observe m.act ~t_prev:t0 ~t_now:(Driver.time m.driver)
    ~vm:m.vm_buf;
  check_block m

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

(** Tissue checkpoint: the driver's capture (state variables, Vm and the
    other externals, params, clock) extended with the activation
    detector's state and the conduction-block latches, so a resumed
    tissue run reproduces activation maps and block verdicts exactly —
    not just voltages. *)
let capture (m : t) : Obs.Recorder.checkpoint =
  let ck = Driver.capture m.driver in
  let act_sections, primed = Activation.export_state m.act in
  let ck =
    {
      ck with
      Obs.Recorder.ck_sections =
        ck.Obs.Recorder.ck_sections
        @ List.map
            (fun (name, data) ->
              { Obs.Recorder.sec_name = name; sec_data = data })
            act_sections;
    }
  in
  let ck = Obs.Recorder.set_meta ck "kind" "tissue" in
  let ck = Obs.Recorder.set_meta ck "geometry" (Geometry.describe m.geom) in
  let ck = Obs.Recorder.set_meta ck "act_primed" (string_of_bool primed) in
  let ck =
    Obs.Recorder.set_meta ck "block_checked" (string_of_bool m.block_checked)
  in
  Obs.Recorder.set_meta ck "block_tripped" (string_of_bool m.block_tripped)

let restore (m : t) (ck : Obs.Recorder.checkpoint) :
    (unit, Easyml.Diag.t) result =
  let ( let* ) = Result.bind in
  let mismatch fmt =
    Fmt.kstr
      (fun s ->
        Error
          (Easyml.Diag.make ~sev:Easyml.Diag.Error ~code:"checkpoint-mismatch"
             s))
      fmt
  in
  let* () =
    match Obs.Recorder.meta ck "kind" with
    | Some "tissue" -> Ok ()
    | Some k -> mismatch "checkpoint kind=%s, expected tissue" k
    | None -> mismatch "checkpoint missing kind metadata"
  in
  let* () =
    match Obs.Recorder.meta ck "geometry" with
    | Some g when g = Geometry.describe m.geom -> Ok ()
    | Some g ->
        mismatch "checkpoint geometry %s, this simulation is %s" g
          (Geometry.describe m.geom)
    | None -> mismatch "checkpoint missing geometry metadata"
  in
  let* () = Driver.restore m.driver ck in
  let bool_meta key =
    match Obs.Recorder.meta ck key with
    | Some "true" -> Ok true
    | Some "false" -> Ok false
    | Some v -> mismatch "checkpoint has %s=%s, expected a boolean" key v
    | None -> mismatch "checkpoint missing required metadata key %s" key
  in
  let* primed = bool_meta "act_primed" in
  let* block_checked = bool_meta "block_checked" in
  let* block_tripped = bool_meta "block_tripped" in
  let sections =
    List.map
      (fun s -> (s.Obs.Recorder.sec_name, s.Obs.Recorder.sec_data))
      ck.Obs.Recorder.ck_sections
  in
  let* () =
    match Activation.import_state m.act ~sections ~primed with
    | Ok () -> Ok ()
    | Error msg -> mismatch "activation state: %s" msg
  in
  m.block_checked <- block_checked;
  m.block_tripped <- block_tripped;
  Ok ()

let run ?ckpt (m : t) ~(steps : int) : float =
  let t0 = Unix.gettimeofday () in
  let maybe_ckpt () =
    match ckpt with
    | Some w
      when Obs.Recorder.due w ~step:m.driver.Driver.steps_done ->
        Obs.Tracer.with_span "tissue.checkpoint" (fun () ->
            ignore (Obs.Recorder.record w (capture m)))
    | _ -> ()
  in
  for _ = 1 to steps do
    step m;
    maybe_ckpt ()
  done;
  Unix.gettimeofday () -. t0

let conduction_velocity (m : t) : float option =
  Activation.conduction_velocity m.act m.geom ~from_cell:m.probe_a
    ~to_cell:m.probe_b

let blocked (m : t) : bool = m.block_tripped

let stats (m : t) : Obs.Export.tissue_stats =
  {
    Obs.Export.tt_model =
      m.driver.Driver.gen.Codegen.Kernel.model.Easyml.Model.name;
    tt_cells = Geometry.cells m.geom;
    tt_activated = Activation.activated m.act;
    tt_reactivated = Activation.reactivated m.act;
    tt_block_trips = (if m.block_tripped then 1 else 0);
    tt_cv = conduction_velocity m;
  }
