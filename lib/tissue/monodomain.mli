(** Operator-split monodomain reaction–diffusion engine.

    Couples the per-cell ionic step — the generated kernel running under
    any of the five {!Sim.Driver} engines, with Domain-parallel chunks —
    with an implicit diffusion step ({!Diffusion}: tridiagonal Thomas on
    cables, CG on sheets):

      Cm dVm/dt = σ ∇²Vm − Iion + Istim

    {b Splitting order} (test-pinned, see DESIGN.md §12):
    - [Godunov] — per step: (1) ionic compute stage at the current state,
      (2) IMEX exchange+diffusion
      [(I − dt·λ·L) Vm' = Vm + dt·(Istim − Iion)/Cm] — exactly the
      {!Solver.Cable.step} convention, first-order in the splitting.
    - [Strang] — per step: (1) implicit diffusion over [dt/2], (2) the
      full-[dt] ionic stage plus explicit reaction update
      [Vm += dt·(Istim − Iion)/Cm], (3) implicit diffusion over [dt/2]
      — second-order.  The ionic kernel's [dt] is baked in by runtime
      specialization, so only the diffusion operator is halved.

    The stimulus is evaluated at the {e pre-step} time (the
    {!Sim.Driver.membrane_update} convention).  Diffusion, exchange and
    measurement are deterministic and single-threaded, and the ionic
    stage is bitwise-reproducible across thread counts, so tissue
    trajectories are bitwise identical across engines (native: the
    kernels' ≤ 2 ULP bound) and across [nthreads]. *)

type splitting = Godunov | Strang

type config = {
  sigma : float;  (** effective diffusivity σ/(Cm·χ), cm²/ms *)
  cm : float;  (** membrane capacitance scale for the reaction term *)
  splitting : splitting;
  threshold : float;  (** upstroke detection threshold, mV *)
  reset : float;  (** rearm threshold for reactivation counting, mV *)
  block_check_ms : float option;
      (** when set: at this simulation time, trip the conduction-block
          detector unless some cell {e outside} every stimulated region
          has activated *)
  probes : (int * int) option;
      (** conduction-velocity probe cells (defaults to 20% / 80% along
          x, middle row on sheets) *)
}

val default_config : config
(** σ = 0.001 cm²/ms, Cm = 1, [Godunov], threshold −20 mV, reset
    −60 mV, no block check, default probes. *)

type t

val create :
  ?engine:Sim.Driver.engine ->
  ?tile:int ->
  ?specialize:bool ->
  ?config:config ->
  ?nthreads:int ->
  Codegen.Kernel.t ->
  geom:Geometry.t ->
  dt:float ->
  protocol:Protocol.t ->
  t
(** A tissue simulation of [geom] running the generated kernel on every
    node.  [nthreads] (default 1) Domain-parallelizes the ionic stage
    via the driver's race-checked chunk partitioning; results are
    bitwise identical for every value.
    @raise Sim.Driver.Driver_error as {!Sim.Driver.create}. *)

val driver : t -> Sim.Driver.t
(** The underlying driver, e.g. for {!Sim.Driver.enable_health} (attach
    it before stepping to arm the NaN/range and conduction-block
    monitors). *)

val geometry : t -> Geometry.t
val activation : t -> Activation.t
val protocol : t -> Protocol.t
val time : t -> float
(** Current simulation time, ms. *)

val step : t -> unit
(** One operator-split step: ionic stage(s), exchange, diffusion
    solve(s), clock tick, activation observation, block check.  Phases
    record {!Obs.Tracer} spans ([tissue.ionic], [tissue.exchange],
    [tissue.diffusion]) when tracing is enabled. *)

val run : ?ckpt:Obs.Recorder.writer -> t -> steps:int -> float
(** [steps] full steps; returns total wall-clock seconds.  [?ckpt]
    attaches a flight recorder: after any step whose index is due
    ({!Obs.Recorder.due}) the simulation {!capture}s itself and records
    the checkpoint.  Captures copy every buffer, so a checkpointed run
    is bitwise identical to a plain one. *)

val probes : t -> int * int
val conduction_velocity : t -> float option
(** Velocity between the probe cells, cm/ms ([None] until both
    activated). *)

val blocked : t -> bool
(** The conduction-block detector tripped (propagation never left the
    stimulated region by [block_check_ms]).  Also recorded as a hard
    {!Obs.Health} trip when a monitor is attached. *)

val stats : t -> Obs.Export.tissue_stats
(** Prometheus-ready counters ({!Obs.Export.prometheus} [?tissue]). *)

(** {2 Flight recorder} *)

val capture : t -> Obs.Recorder.checkpoint
(** {!Sim.Driver.capture} of the inner driver (state variables, Vm and
    the other externals, clock) extended with the activation detector's
    full state ([act:*] sections) and the conduction-block latches, under
    [kind=tissue] metadata.  A restored tissue run reproduces activation
    maps and block verdicts exactly, not just voltages. *)

val restore : t -> Obs.Recorder.checkpoint -> (unit, Easyml.Diag.t) result
(** Load a {!capture}d tissue checkpoint into a simulation created with
    the same model, config, geometry, protocol and [dt].  Mismatches
    (kind, geometry, or anything {!Sim.Driver.restore} validates) are
    structured [checkpoint-mismatch] diagnostics; on [Ok ()] the
    simulation continues bitwise identically to the uninterrupted run. *)
