(** Stimulus protocols over {!Sim.Stim.spatial} pulses. *)

module Stim = Sim.Stim

type t = { name : string; stims : Stim.spatial list }

let current (p : t) ~(t : float) ~(cell : int) : float =
  match p.stims with
  | [ s ] -> Stim.at_cell s ~t ~cell
  | stims ->
      List.fold_left (fun acc s -> acc +. Stim.at_cell s ~t ~cell) 0.0 stims

(* weight 1 on the strip x < width, 0 elsewhere *)
let strip_mask (g : Geometry.t) ~(width : int) : floatarray =
  let n = Geometry.cells g in
  let w = Float.Array.make n 0.0 in
  for cell = 0 to n - 1 do
    let x, _ = Geometry.coords g cell in
    if x < width then Float.Array.set w cell 1.0
  done;
  w

(* weight 1 on the lower-left quadrant of a sheet (cross-field S2);
   on a cable, the S1 strip itself (premature beat at the same site) *)
let s2_mask (g : Geometry.t) ~(width : int) : floatarray =
  match g with
  | Geometry.Cable _ -> strip_mask g ~width
  | Geometry.Sheet { nx; ny; _ } ->
      let w = Float.Array.make (nx * ny) 0.0 in
      for y = 0 to (ny / 2) - 1 do
        for x = 0 to (nx / 2) - 1 do
          Float.Array.set w ((y * nx) + x) 1.0
        done
      done;
      w

let s1 ?(amplitude = 80.0) ?(start = 1.0) ?(duration = 2.0) ?(width = 5)
    (g : Geometry.t) : t =
  let pulse = Stim.make ~amplitude ~start ~duration () in
  {
    name = "s1";
    stims = [ Stim.weighted pulse (strip_mask g ~width) ];
  }

let s1s2 ?(amplitude = 80.0) ?(start = 1.0) ?(duration = 2.0) ?(width = 5)
    ~(s2_start : float) (g : Geometry.t) : t =
  let p1 = Stim.make ~amplitude ~start ~duration () in
  let p2 = Stim.make ~amplitude ~start:s2_start ~duration () in
  {
    name = "s1s2";
    stims =
      [
        Stim.weighted p1 (strip_mask g ~width);
        Stim.weighted p2 (s2_mask g ~width);
      ];
  }

let restitution ?(amplitude = 80.0) ?(start = 1.0) ?(duration = 2.0)
    ?(width = 5) ~(n_s1 : int) ~(interval : float) ~(s2_coupling : float)
    (g : Geometry.t) : t =
  if n_s1 < 1 then invalid_arg "Protocol.restitution: need n_s1 >= 1";
  if interval <= 0.0 then
    invalid_arg "Protocol.restitution: interval must be positive";
  let mask = strip_mask g ~width in
  let train =
    List.init n_s1 (fun k ->
        let pulse =
          Stim.make ~amplitude
            ~start:(start +. (float_of_int k *. interval))
            ~duration ()
        in
        Stim.weighted pulse mask)
  in
  let s2 =
    Stim.weighted
      (Stim.make ~amplitude
         ~start:(start +. (float_of_int (n_s1 - 1) *. interval) +. s2_coupling)
         ~duration ())
      mask
  in
  { name = "restitution"; stims = train @ [ s2 ] }
