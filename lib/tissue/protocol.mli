(** Spatially addressed stimulus protocols for tissue simulations,
    built from {!Sim.Stim.spatial} pulses: S1 planar strips, S1–S2
    cross-field shock (spiral-wave induction) and restitution pacing
    trains. *)

type t = {
  name : string;
  stims : Sim.Stim.spatial list;  (** summed per cell at each step *)
}

val current : t -> t:float -> cell:int -> float
(** Total stimulus current for [cell] at time [t] (ms): the sum of
    every pulse's {!Sim.Stim.at_cell}.  With a single pulse the sum is
    the pulse's value itself — no arithmetic is added. *)

val s1 :
  ?amplitude:float ->
  ?start:float ->
  ?duration:float ->
  ?width:int ->
  Geometry.t ->
  t
(** One planar stimulus on the strip [x < width] (default 5 cells;
    amplitude 80 µA/µF, start 1 ms, duration 2 ms): launches a plane
    wave travelling in +x. *)

val s1s2 :
  ?amplitude:float ->
  ?start:float ->
  ?duration:float ->
  ?width:int ->
  s2_start:float ->
  Geometry.t ->
  t
(** Cross-field spiral induction: the {!s1} plane wave plus an S2 shock
    at [s2_start] (ms) covering the lower-left quadrant
    ([x < nx/2 && y < ny/2]) of a sheet.  Delivered into the S1 wake's
    vulnerable window, the S2 front breaks and curls into a reentrant
    spiral.  On a cable the S2 restimulates the S1 site (premature
    beat). *)

val restitution :
  ?amplitude:float ->
  ?start:float ->
  ?duration:float ->
  ?width:int ->
  n_s1:int ->
  interval:float ->
  s2_coupling:float ->
  Geometry.t ->
  t
(** Restitution pacing: a finite train of [n_s1] S1 pulses spaced
    [interval] ms apart on the [x < width] strip, then one premature S2
    at the same site [s2_coupling] ms after the last S1 — the standard
    S1–S2 restitution-curve protocol.
    @raise Invalid_argument when [n_s1 < 1] or [interval <= 0]. *)
