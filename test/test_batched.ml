(* Tile-batched engine tests: bitwise differential against the fused
   engine on the full model catalogue across tile sizes, qcheck
   properties for the slot coalescer (standalone and end-to-end on random
   straight-line loops), tile-partition race checking, and the tile knob
   in the compile-cache key. *)

open Exec
module C = Codegen.Config
module B = Ir.Builder
module R = Sim.Racecheck
module RA = Regalloc

let stim = Sim.Stim.make ~amplitude:40.0 ~start:0.5 ~duration:1.0 ()

let configs = [ ("scalar", C.baseline); ("vector", C.mlir ~width:4) ]

(* 13 cells: pads to 16 under width 4, so tile 3 does not divide the
   4 blocks, tile 4 divides exactly, 1024 exceeds the whole range. *)
let ncells = 13
let tiles = [ 1; 3; 4; 1024 ]

let gen_of name cfg =
  let e = Models.Registry.find_exn name in
  Codegen.Cache.generate_named cfg ~name:e.Models.Model_def.name (fun () ->
      Models.Registry.model e)

let check_snapshots ~ctx a b =
  List.iter2
    (fun (n, x) (_, y) ->
      if not (Float.is_finite x) then Alcotest.failf "%s: %s not finite" ctx n;
      if not (Helpers.same_float x y) then
        Alcotest.failf "%s: mismatch on %s: %.17g vs %.17g" ctx n x y)
    a b

(* batched == fused, bitwise, on all 43 models, for every tested tile
   size, and independently of bounds-check elision. *)
let test_all_models_batched_bitwise () =
  List.iter
    (fun (e : Models.Model_def.entry) ->
      List.iter
        (fun (cname, cfg) ->
          let g =
            Codegen.Cache.generate_named cfg ~name:e.name (fun () ->
                Models.Registry.model e)
          in
          let run d =
            for _ = 1 to 50 do
              Sim.Driver.step ~stim d
            done;
            List.map (fun cell -> (cell, Sim.Driver.snapshot d cell)) [ 0; 6; 12 ]
          in
          let reference = run (Sim.Driver.create g ~ncells ~dt:0.01) in
          let check ~ctx snaps =
            List.iter2
              (fun (cell, a) (_, b) ->
                check_snapshots ~ctx:(Printf.sprintf "%s cell %d" ctx cell) a b)
              reference snaps
          in
          List.iter
            (fun tile ->
              check
                ~ctx:(Printf.sprintf "%s/%s tile=%d" e.name cname tile)
                (run
                   (Sim.Driver.create ~engine:Sim.Driver.Batched ~tile g
                      ~ncells ~dt:0.01)))
            tiles;
          check
            ~ctx:(Printf.sprintf "%s/%s unelided" e.name cname)
            (run
               (Sim.Driver.create ~engine:Sim.Driver.Batched ~elide:false
                  ~tile:4 g ~ncells ~dt:0.01)))
        configs)
    Models.Registry.all

(* The cubic-spline LUT path exercises the Catmull-Rom macro-op arm. *)
let test_cubic_lut_macro_op_bitwise () =
  List.iter
    (fun name ->
      let cfg = { (C.mlir ~width:4) with C.lut_spline = true } in
      let g = gen_of name cfg in
      let run engine =
        let d = Sim.Driver.create ~engine g ~ncells ~dt:0.01 in
        for _ = 1 to 50 do
          Sim.Driver.step ~stim d
        done;
        Sim.Driver.snapshot d 6
      in
      check_snapshots
        ~ctx:(name ^ " cubic batched/fused")
        (run Sim.Driver.Batched) (run Sim.Driver.Fused))
    [ "MitchellSchaeffer"; "LuoRudy91"; "TenTusscher" ]

(* Domain-parallel batched stepping: tile-aligned chunks are proved
   race-free and the run is bitwise identical to sequential. *)
let test_parallel_tiles_identical () =
  List.iter
    (fun name ->
      let g = gen_of name (C.mlir ~width:4) in
      let mk () =
        Sim.Driver.create ~engine:Sim.Driver.Batched ~tile:2 g ~ncells:17
          ~dt:0.01
      in
      (match R.check_tiles g ~ncells:17 ~nthreads:4 ~tile:2 with
      | Ok _ -> ()
      | Error cs -> Alcotest.failf "%s: %s" name (R.errors_to_string cs));
      let ds = mk () and dp = mk () in
      for _ = 1 to 50 do
        Sim.Driver.step ~stim ds;
        Sim.Driver.step ~nthreads:4 ~stim dp
      done;
      for cell = 0 to 16 do
        check_snapshots
          ~ctx:(Printf.sprintf "%s parallel tile cell %d" name cell)
          (Sim.Driver.snapshot ds cell)
          (Sim.Driver.snapshot dp cell)
      done)
    [ "MitchellSchaeffer"; "LuoRudy91" ]

(* Tile-aligned partitions pass the race checker for every shape; a
   partition that splits a vector block is still rejected. *)
let test_tile_partitions_checked () =
  let g = gen_of "LuoRudy91" (C.mlir ~width:4) in
  List.iter
    (fun (tile, nthreads) ->
      match R.check_tiles g ~ncells:33 ~nthreads ~tile with
      | Ok _ -> ()
      | Error cs ->
          Alcotest.failf "tile=%d nthreads=%d: %s" tile nthreads
            (R.errors_to_string cs))
    [ (1, 2); (2, 4); (5, 3); (64, 2) ];
  match R.check_partition g ~ncells_pad:16 [ (0, 6); (6, 16) ] with
  | Ok _ -> Alcotest.fail "block-splitting partition was not rejected"
  | Error cs ->
      Alcotest.(check bool) "conflicts reported" true (List.length cs > 0)

(* -- tile knob in the compile-cache key --------------------------------- *)

let test_tile_in_cache_key () =
  let cfg = C.mlir ~width:4 in
  let cfgt = { cfg with C.tile = 8 } in
  Alcotest.(check bool)
    "describe distinguishes tile sizes" true
    (C.describe cfg <> C.describe cfgt);
  Alcotest.(check bool)
    "+tile8 in label" true
    (Helpers.contains (C.describe cfgt) "+tile8");
  let e = Models.Registry.find_exn "MitchellSchaeffer" in
  let gen c =
    Codegen.Cache.generate_named c ~name:e.Models.Model_def.name (fun () ->
        Models.Registry.model e)
  in
  let g1 = gen cfg in
  let g2 = gen cfgt in
  let g1' = gen cfg in
  Alcotest.(check bool) "same config hits the cache" true (g1 == g1');
  Alcotest.(check bool) "different tile misses" true (g1 != g2)

let test_driver_tile_resolution () =
  let g = gen_of "MitchellSchaeffer" (C.mlir ~width:4) in
  let d7 =
    Sim.Driver.create ~engine:Sim.Driver.Batched ~tile:7 g ~ncells:8 ~dt:0.01
  in
  Alcotest.(check int) "explicit tile wins" 7 d7.Sim.Driver.tile;
  let da = Sim.Driver.create ~engine:Sim.Driver.Batched g ~ncells:8 ~dt:0.01 in
  Alcotest.(check bool)
    "auto tile within the L1 sizing clamp" true
    (da.Sim.Driver.tile >= 4 && da.Sim.Driver.tile <= 64);
  let df = Sim.Driver.create g ~ncells:8 ~dt:0.01 in
  Alcotest.(check int) "non-batched drivers use unit tiles" 1 df.Sim.Driver.tile

(* -- slot coalescer: standalone property -------------------------------- *)

(* Random straight-line programs: instruction t defines vreg t (random
   class); uses draw from earlier definitions. *)
let prog_gen : RA.program QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 1 40 in
  let* classes = flatten_l (List.init n (fun _ -> int_range 0 2)) in
  let cls = Array.of_list classes in
  let vreg j = { RA.vclass = cls.(j); vid = j } in
  let* uses =
    flatten_l
      (List.init n (fun t ->
           if t = 0 then return []
           else
             let* k = int_range 0 3 in
             let* js = flatten_l (List.init k (fun _ -> int_range 0 (t - 1))) in
             return (List.map vreg js)))
  in
  return
    {
      RA.uses = Array.of_list uses;
      defs = Array.init n (fun t -> [ vreg t ]);
    }

let print_prog (p : RA.program) : string =
  String.concat "; "
    (Array.to_list
       (Array.mapi
          (fun t us ->
            Printf.sprintf "%d: def %d.%d use [%s]" t
              (List.hd p.RA.defs.(t)).RA.vclass t
              (String.concat ","
                 (List.map
                    (fun (v : RA.vreg) ->
                      Printf.sprintf "%d.%d" v.RA.vclass v.RA.vid)
                    us)))
          p.RA.uses))

let coalescer_sound =
  Helpers.qtest ~count:500 "linear-scan allocation verifies on random programs"
    (QCheck.make ~print:print_prog prog_gen)
    (fun p ->
      let a = RA.allocate p in
      (match RA.verify p a with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "verify: %s" msg);
      (* rows never exceed the virtual-register count, per class *)
      List.for_all
        (fun (cls, rows) ->
          let virtuals =
            Array.fold_left
              (fun acc ds ->
                acc
                + List.length (List.filter (fun v -> v.RA.vclass = cls) ds))
              0 p.RA.defs
          in
          rows <= max 1 virtuals)
        a.RA.counts)

(* -- slot coalescing preserves execution on random loop bodies ---------- *)

(* Lower a random expression into a parallel loop body (two loads, the
   expression, one store) and require the batched engine — imports,
   pairing, coalesced rows and all — to match the closure engine
   bitwise, for several tile sizes. *)
let lower_loop ~(w : int) (e : Easyml.Ast.expr) : Ir.Func.modl =
  let m = Ir.Func.create_module "bat_loop" in
  let c = B.create_ctx () in
  Ir.Func.add_func m
    (B.func c ~name:"f"
       ~params:[ Ir.Ty.Memref; Ir.Ty.Memref; Ir.Ty.Memref; Ir.Ty.I64 ]
       ~results:[]
       (fun b args ->
         let in1 = List.nth args 0
         and in2 = List.nth args 1
         and out = List.nth args 2
         and n = List.nth args 3 in
         ignore
           (B.for_ b ~parallel:true ~lb:(B.consti b 0) ~ub:n
              ~step:(B.consti b w) ~inits:[]
              (fun ~iv ~iters:_ ->
                let x, y =
                  if w = 1 then
                    ( B.load b ~mem:in1 ~idx:iv,
                      B.load b ~mem:in2 ~idx:iv )
                  else
                    ( B.vec_load b ~width:w ~mem:in1 ~idx:iv,
                      B.vec_load b ~width:w ~mem:in2 ~idx:iv )
                in
                let env =
                  Codegen.Lower.make_env ~b ~width:w [ ("x", x); ("y", y) ]
                in
                let r = Codegen.Lower.lower_num env e in
                if w = 1 then B.store b r ~mem:out ~idx:iv
                else B.vec_store b ~vec:r ~mem:out ~idx:iv;
                []));
         B.ret b []));
  m

let run_loop ~(engine : [ `Batched of int | `Closure ]) (m : Ir.Func.modl)
    ~(n : int) (in1 : floatarray) (in2 : floatarray) : floatarray =
  let out = Float.Array.make n 0.0 in
  let args = [| Rt.M in1; Rt.M in2; Rt.M out; Rt.I n |] in
  (match engine with
  | `Batched tile -> ignore (Batched.run ~tile m "f" args)
  | `Closure -> ignore (Engine.run m "f" args));
  out

let batched_matches_closure_on_loops ~(w : int) name =
  Helpers.qtest ~count:120 name
    (Helpers.arbitrary_expr [ "x"; "y" ])
    (fun e ->
      let m = lower_loop ~w e in
      Ir.Verifier.verify_module_exn m;
      (* the loop must actually tile (auto tiles are >= 4 blocks) *)
      if Batched.plan_tile m ~name:"f" < 4 then
        QCheck.Test.fail_reportf "loop did not tile";
      let n = 12 in
      let in1 = Float.Array.init n (fun i -> Float.sin (float_of_int (i + 1)))
      and in2 = Float.Array.init n (fun i -> Float.cos (float_of_int i)) in
      let want = run_loop ~engine:`Closure m ~n in1 in2 in
      List.for_all
        (fun tile ->
          let got = run_loop ~engine:(`Batched tile) m ~n in1 in2 in
          let ok = ref true in
          for i = 0 to n - 1 do
            if
              not
                (Helpers.same_float (Float.Array.get got i)
                   (Float.Array.get want i))
            then ok := false
          done;
          !ok)
        [ 0; 1; 5; 1024 ])

let suite =
  [
    Alcotest.test_case "all 43: batched == fused bitwise across tiles" `Slow
      test_all_models_batched_bitwise;
    Alcotest.test_case "cubic LUT macro-op bitwise" `Quick
      test_cubic_lut_macro_op_bitwise;
    Alcotest.test_case "parallel tile chunks bitwise + race-free" `Quick
      test_parallel_tiles_identical;
    Alcotest.test_case "tile partitions accepted, block splits rejected"
      `Quick test_tile_partitions_checked;
    Alcotest.test_case "tile size participates in the cache key" `Quick
      test_tile_in_cache_key;
    Alcotest.test_case "driver tile resolution" `Quick
      test_driver_tile_resolution;
    coalescer_sound;
    batched_matches_closure_on_loops ~w:1
      "batched == closure on random scalar loops (all tiles)";
    batched_matches_closure_on_loops ~w:4
      "batched == closure on random vector loops (all tiles)";
  ]
