(* Dataflow-framework tests: interval soundness on random lowered IR and
   on the congruence algebra, footprint soundness over random address
   chains, definite-initialization, kernel bounds proofs, the pipeline
   analysis cache, deep verification over the catalogue, and the EasyML
   lint (including the seeded bad model the CLI test rejects). *)

open Ir
module A = Analysis
module I = A.Itv.I
module F = A.Itv.F
module C = Codegen.Config

(* -- interval soundness on random straight-line IR ------------------- *)

let return_operand (f : Func.func) : Value.t =
  let ret =
    List.find (fun (o : Op.op) -> o.Op.kind = Op.Return) f.Func.f_body.Op.r_ops
  in
  ret.Op.operands.(0)

(* The converged float interval of f's return value must contain the
   engine's concrete result when the parameters are seeded with the
   concrete inputs. *)
let interval_sound_on_ir =
  Helpers.qtest ~count:300 "interval analysis contains concrete execution"
    QCheck.(
      triple (Helpers.arbitrary_expr [ "x"; "y" ])
        (QCheck.float_range (-3.0) 3.0) (QCheck.float_range (-3.0) 3.0))
    (fun (e, x, y) ->
      let m = Test_engine.lower_scalar e in
      let f = Option.get (Func.find_func m "f") in
      let seed =
        List.map2
          (fun p v -> (p, A.Interval.AF (F.const v)))
          f.Func.f_params [ x; y ]
      in
      let st = A.Interval.analyze_func ~seed f in
      let itv = A.Interval.float_itv st (return_operand f) in
      F.mem (Test_engine.run_scalar m x y) itv)

(* -- congruence-interval algebra soundness --------------------------- *)

(* x in a and y in b imply (x op y) in (a op b) for every transfer; the
   intervals are built so that x (resp. y) is a member by construction. *)
let congruence_sound =
  let gen =
    QCheck.make
      ~print:(fun (x, y, dx, dy, m1, m2) ->
        Printf.sprintf "x=%d y=%d dx=%d dy=%d m1=%d m2=%d" x y dx dy m1 m2)
      QCheck.Gen.(
        let* x = int_range (-60) 60 in
        let* y = int_range (-60) 60 in
        let* dx = int_range 0 24 in
        let* dy = int_range 0 24 in
        let* m1 = int_range 1 8 in
        let* m2 = int_range 1 8 in
        return (x, y, dx, dy, m1, m2))
  in
  Helpers.qtest ~count:500 "congruence intervals are sound for every op" gen
    (fun (x, y, dx, dy, m1, m2) ->
      let a = I.mk (x - dx) (x + dx) m1 (A.Itv.emod x m1) in
      let b = I.mk (y - dy) (y + dy) m2 (A.Itv.emod y m2) in
      I.mem x a && I.mem y b
      && I.mem (x + y) (I.add a b)
      && I.mem (x - y) (I.sub a b)
      && I.mem (x * y) (I.mul a b)
      && I.mem (min x y) (I.min_ a b)
      && I.mem (max x y) (I.max_ a b)
      && I.mem x (I.join a b)
      && I.mem y (I.join a b)
      && I.subset a (I.join a b)
      && I.overlap a (I.const x)
      && (y = 0 || I.mem (x / y) (I.div a b))
      && (y = 0 || I.mem (x mod y) (I.rem a b)))

(* -- footprint soundness over random address chains ------------------ *)

(* f(mem, i): idx = (i + c1)*c2 + c3; load mem[idx]; store mem[idx + 1].
   With i seeded to the w-aligned range [0, n], every concrete choice of
   i must produce indices inside the reported read/write intervals. *)
let footprint_fn (c1 : int) (c2 : int) (c3 : int) : Func.modl * Func.func =
  let m = Func.create_module "fp" in
  let c = Builder.create_ctx () in
  let f =
    Builder.func c ~name:"f" ~params:[ Ty.Memref; Ty.I64 ] ~results:[ Ty.F64 ]
      (fun b args ->
        let mem = List.nth args 0 and i = List.nth args 1 in
        let idx =
          Builder.addi b
            (Builder.muli b
               (Builder.addi b i (Builder.consti b c1))
               (Builder.consti b c2))
            (Builder.consti b c3)
        in
        let v = Builder.load b ~mem ~idx in
        Builder.store b v ~mem ~idx:(Builder.addi b idx (Builder.consti b 1));
        Builder.ret b [ v ])
  in
  Func.add_func m f;
  (m, f)

let footprint_sound =
  let gen =
    QCheck.make
      ~print:(fun (blk, c1, c2, c3, w) ->
        Printf.sprintf "blk=%d c1=%d c2=%d c3=%d w=%d" blk c1 c2 c3 w)
      QCheck.Gen.(
        let* blk = int_range 0 8 in
        let* c1 = int_range (-4) 4 in
        let* c2 = int_range 1 5 in
        let* c3 = int_range (-4) 4 in
        let* w = oneofl [ 1; 2; 4; 8 ] in
        return (blk, c1, c2, c3, w))
  in
  Helpers.qtest ~count:300 "footprint summary contains concrete accesses" gen
    (fun (blk, c1, c2, c3, w) ->
      let m, f = footprint_fn c1 c2 c3 in
      Verifier.verify_module_exn m;
      let i_param = List.nth f.Func.f_params 1 in
      let n = 8 * w in
      let seed = [ (i_param, A.Interval.AI (I.mk 0 n w 0)) ] in
      let _, accs = A.Footprint.of_func ~seed f in
      let i0 = min (blk * w) n in
      let idx = ((i0 + c1) * c2) + c3 in
      let on_param0 (a : A.Footprint.access) =
        A.Interval.origin_equal a.A.Footprint.acc_origin (A.Interval.Oparam 0)
      in
      List.for_all on_param0 accs
      && List.exists
           (fun (a : A.Footprint.access) -> I.mem idx a.A.Footprint.acc_itv)
           (A.Footprint.reads accs)
      && List.exists
           (fun (a : A.Footprint.access) ->
             I.mem (idx + 1) a.A.Footprint.acc_itv)
           (A.Footprint.writes accs))

(* -- definite initialization ----------------------------------------- *)

let test_meminit_flags_uninitialized_read () =
  let m = Func.create_module "mi" in
  let c = Builder.create_ctx () in
  let f =
    Builder.func c ~name:"f" ~params:[] ~results:[ Ty.F64 ] (fun b _ ->
        let buf = Builder.alloc b ~size:(Builder.consti b 4) in
        Builder.store b (Builder.constf b 1.0) ~mem:buf
          ~idx:(Builder.consti b 0);
        let clean = Builder.load b ~mem:buf ~idx:(Builder.consti b 0) in
        let dirty = Builder.load b ~mem:buf ~idx:(Builder.consti b 2) in
        Builder.ret b [ Builder.addf b clean dirty ])
  in
  Func.add_func m f;
  Verifier.verify_module_exn m;
  match A.Meminit.check_func f with
  | [ issue ] ->
      Alcotest.(check bool)
        "issue mentions the alloc" true
        (Helpers.contains issue.A.Meminit.mi_msg "alloc#")
  | issues ->
      Alcotest.failf "expected exactly one issue, got %d" (List.length issues)

let test_meminit_loop_sweep_covers () =
  (* a full contiguous loop sweep initializes the buffer; the read after
     the loop is clean *)
  let m = Func.create_module "mi2" in
  let c = Builder.create_ctx () in
  let f =
    Builder.func c ~name:"f" ~params:[] ~results:[ Ty.F64 ] (fun b _ ->
        let buf = Builder.alloc b ~size:(Builder.consti b 8) in
        let _ =
          Builder.for_ b ~lb:(Builder.consti b 0) ~ub:(Builder.consti b 8)
            ~step:(Builder.consti b 1) ~inits:[] (fun ~iv ~iters:_ ->
              Builder.store b (Builder.constf b 0.5) ~mem:buf ~idx:iv;
              [])
        in
        Builder.ret b [ Builder.load b ~mem:buf ~idx:(Builder.consti b 5) ])
  in
  Func.add_func m f;
  Verifier.verify_module_exn m;
  Alcotest.(check int)
    "no issues" 0
    (List.length (A.Meminit.check_func f))

(* -- bounds proofs on a real kernel ----------------------------------- *)

let test_bounds_proves_kernel_accesses () =
  let m = Models.Registry.model (Models.Registry.find_exn "HodgkinHuxley") in
  let g = Codegen.Cache.generate (C.mlir ~width:4) m in
  let proved = Sim.Kernel_facts.prove_bounds g ~ncells_pad:16 in
  let f = Option.get (Sim.Kernel_facts.compute_func g) in
  let n = A.Bounds.cardinal proved in
  Alcotest.(check bool) "some accesses proved" true (n > 0);
  Alcotest.(check bool)
    "never more than the elidable ops" true
    (n <= A.Bounds.elidable_count f);
  (* the driver consumes the proofs by default *)
  let d = Sim.Driver.create g ~ncells:16 ~dt:0.01 in
  Alcotest.(check bool)
    "driver carries a non-empty proof set" true
    (Hashtbl.length d.Sim.Driver.proved > 0);
  let dn = Sim.Driver.create ~elide:false g ~ncells:16 ~dt:0.01 in
  Alcotest.(check int)
    "elide:false keeps every check" 0
    (Hashtbl.length dn.Sim.Driver.proved)

(* -- pipeline analysis cache ------------------------------------------ *)

let test_analyses_cache_and_invalidation () =
  let m = Models.Registry.model (Models.Registry.find_exn "MitchellSchaeffer") in
  let g = Codegen.Kernel.generate ~optimize:false (C.mlir ~width:4) m in
  let f = List.hd g.Codegen.Kernel.modl.Func.m_funcs in
  let t = Passes.Analyses.create () in
  let st1 = Passes.Analyses.interval t f in
  let st2 = Passes.Analyses.interval t f in
  Alcotest.(check bool) "second query hits the cache" true (st1 == st2);
  Alcotest.(check int) "one cached state" 1 (Passes.Analyses.cached_intervals t);
  Passes.Analyses.invalidate t f;
  Alcotest.(check int) "invalidation drops it" 0
    (Passes.Analyses.cached_intervals t);
  let st3 = Passes.Analyses.interval t f in
  Alcotest.(check bool) "recomputed after invalidation" true (st3 != st1);
  (* running the pipeline with a shared cache must leave only valid
     entries (every changed function was invalidated) *)
  let t2 = Passes.Analyses.create () in
  List.iter
    (fun f -> ignore (Passes.Analyses.interval t2 f))
    g.Codegen.Kernel.modl.Func.m_funcs;
  ignore
    (Passes.Pass.run_pipeline ~analyses:t2 Passes.Pipeline.standard
       g.Codegen.Kernel.modl);
  Alcotest.(check bool)
    "pipeline invalidated rewritten functions" true
    (Passes.Analyses.cached_intervals t2
    < List.length g.Codegen.Kernel.modl.Func.m_funcs)

(* -- deep verification over the catalogue ------------------------------ *)

let test_all_models_deep_verify () =
  List.iter
    (fun (e : Models.Model_def.entry) ->
      let m = Models.Registry.model e in
      List.iter
        (fun cfg ->
          let g =
            Codegen.Cache.generate_named cfg ~name:e.name (fun () -> m)
          in
          match A.Deep.verify_module g.Codegen.Kernel.modl with
          | [] -> ()
          | errs ->
              Alcotest.failf "%s: %s" e.name (Verifier.errors_to_string errs))
        [ C.baseline; C.mlir ~width:4 ])
    Models.Registry.all

(* -- EasyML lint ------------------------------------------------------- *)

let read_file path =
  (* cwd is test/ under `dune runtest` but the repo root under
     `dune exec test/test_main.exe` *)
  let path = if Sys.file_exists path then path else "test/" ^ path in
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_lint_flags_seeded_bad_model () =
  (* same fixture the CLI exit-code rule in test/dune checks *)
  let src = read_file "fixtures/bad_model.easyml" in
  let m = Easyml.Sema.analyze_source ~name:"bad_model" src in
  let ds = A.Lint.check m in
  let codes = List.map (fun (d : Easyml.Diag.t) -> d.Easyml.Diag.code) ds in
  Alcotest.(check bool) "unused state flagged" true
    (List.mem "unused-state" codes);
  Alcotest.(check bool) "narrow lookup flagged" true
    (List.mem "lookup-range" codes);
  Alcotest.(check bool) "lookup-range is an error" true (A.Lint.has_errors ds);
  let _, warns, errs = A.Lint.count_by_severity ds in
  Alcotest.(check bool) "severity counts" true (warns >= 1 && errs >= 1)

let test_lint_run_constant_writes () =
  (* a declared .param() integrated as a state: every read was folded to
     the compile-time value, the state silently diverges *)
  let src_param =
    "Vm; .external(); .nodal();\n\
     Iion; .external(); .nodal();\n\
     Vm_init = -65.0;\n\
     k; .param();\n\
     k = 0.5;\n\
     k_init = 0.5;\n\
     diff_k = 0.01*k;\n\
     m; m_init = 0.1;\n\
     diff_m = (0.2 - m)/1.0;\n\
     Iion = k + m*(Vm + 65.0);\n"
  in
  let m = Easyml.Sema.analyze_source ~name:"bad_param" src_param in
  let ds = A.Lint.check m in
  Alcotest.(check bool) "param-as-state is an error" true
    (List.exists
       (fun (d : Easyml.Diag.t) ->
         d.Easyml.Diag.code = "run-constant-write" && Easyml.Diag.is_error d)
       ds);
  (* assigning the driver-bound dt inside the step body *)
  let src_dt =
    "Vm; .external(); .nodal();\n\
     Iion; .external(); .nodal();\n\
     Vm_init = -65.0;\n\
     m; m_init = 0.1;\n\
     dt = 0.5;\n\
     diff_m = (0.2 - m)/1.0;\n\
     Iion = m*(Vm + 65.0) + dt;\n"
  in
  let m2 = Easyml.Sema.analyze_source ~name:"bad_dt" src_dt in
  let ds2 = A.Lint.check m2 in
  Alcotest.(check bool) "dt assignment is an error" true
    (List.exists
       (fun (d : Easyml.Diag.t) ->
         d.Easyml.Diag.code = "run-constant-write" && Easyml.Diag.is_error d)
       ds2)

let test_lint_catalogue_error_free () =
  (* the bundled models may carry warnings, but never errors *)
  List.iter
    (fun (e : Models.Model_def.entry) ->
      let ds = A.Lint.check (Models.Registry.model e) in
      if A.Lint.has_errors ds then
        Alcotest.failf "%s: %s" e.name
          (String.concat "; "
             (List.map (Easyml.Diag.to_string ~file:e.name)
                (List.filter Easyml.Diag.is_error ds))))
    Models.Registry.all

let suite =
  [
    interval_sound_on_ir;
    congruence_sound;
    footprint_sound;
    Alcotest.test_case "meminit: uninitialized read flagged" `Quick
      test_meminit_flags_uninitialized_read;
    Alcotest.test_case "meminit: loop sweep covers buffer" `Quick
      test_meminit_loop_sweep_covers;
    Alcotest.test_case "bounds prover covers kernel accesses" `Quick
      test_bounds_proves_kernel_accesses;
    Alcotest.test_case "analysis cache memoizes and invalidates" `Quick
      test_analyses_cache_and_invalidation;
    Alcotest.test_case "all 43: deep verification is clean" `Slow
      test_all_models_deep_verify;
    Alcotest.test_case "lint flags the seeded bad model" `Quick
      test_lint_flags_seeded_bad_model;
    Alcotest.test_case "lint: run-constant writes rejected" `Quick
      test_lint_run_constant_writes;
    Alcotest.test_case "lint: catalogue has no errors" `Quick
      test_lint_catalogue_error_free;
  ]
