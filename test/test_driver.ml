(* Simulation-driver tests: initialization, reset, padding, accessors,
   determinism, per-thread kernel instances, timed stepping. *)

module K = Codegen.Kernel
module C = Codegen.Config

let entry = lazy (Models.Registry.find_exn "BeelerReuter")
let gen8 = lazy (K.generate (C.mlir ~width:8) (Models.Registry.model (Lazy.force entry)))

let test_initial_state () =
  let d = Sim.Driver.create (Lazy.force gen8) ~ncells:10 ~dt:0.01 in
  let m = Models.Registry.model (Lazy.force entry) in
  List.iter
    (fun (sv : Easyml.Model.state_var) ->
      for c = 0 to 9 do
        Helpers.fcheck (sv.sv_name ^ " init") sv.sv_init
          (Sim.Driver.state d sv.sv_name c)
      done)
    m.states;
  Helpers.fcheck "Vm init" (-84.57) (Sim.Driver.vm d 0);
  Helpers.fcheck "time starts at 0" 0.0 (Sim.Driver.time d)

let test_padding () =
  (* 10 cells at width 8 pad to 16; padded lanes must not corrupt results *)
  let d = Sim.Driver.create (Lazy.force gen8) ~ncells:10 ~dt:0.01 in
  Alcotest.(check int) "padded" 16 d.Sim.Driver.ncells_pad;
  let d1 = Sim.Driver.create (Lazy.force gen8) ~ncells:16 ~dt:0.01 in
  let stim = Sim.Stim.make ~amplitude:40.0 ~start:0.5 ~duration:1.0 () in
  for _ = 1 to 100 do
    Sim.Driver.step ~stim d;
    Sim.Driver.step ~stim d1
  done;
  for c = 0 to 9 do
    if not (Helpers.same_float (Sim.Driver.vm d c) (Sim.Driver.vm d1 c)) then
      Alcotest.failf "padding changed cell %d" c
  done

let test_reset_reproducible () =
  let d = Sim.Driver.create (Lazy.force gen8) ~ncells:4 ~dt:0.01 in
  let stim = Sim.Stim.make ~amplitude:40.0 ~start:0.5 ~duration:1.0 () in
  for _ = 1 to 50 do
    Sim.Driver.step ~stim d
  done;
  let snap1 = Sim.Driver.snapshot d 2 in
  Sim.Driver.reset d;
  Helpers.fcheck "time reset" 0.0 (Sim.Driver.time d);
  for _ = 1 to 50 do
    Sim.Driver.step ~stim d
  done;
  List.iter2
    (fun (n, a) (_, b) ->
      if not (Helpers.same_float a b) then
        Alcotest.failf "reset not reproducible on %s" n)
    snap1 (Sim.Driver.snapshot d 2)

let test_rerun_identical_trace () =
  (* re-run hygiene: reset + identical stepping must reproduce both the
     results and the exact trace event sequence — no counter or state
     leaks between consecutive runs of one driver *)
  let d = Sim.Driver.create (Lazy.force gen8) ~ncells:4 ~dt:0.01 in
  let stim = Sim.Stim.make ~amplitude:40.0 ~start:0.5 ~duration:1.0 () in
  let run () =
    Obs.Tracer.reset ();
    Obs.Tracer.enable ();
    Sim.Driver.reset d;
    for _ = 1 to 30 do
      Sim.Driver.step ~stim d
    done;
    Obs.Tracer.disable ();
    let s = Obs.Tracer.snapshot () in
    let seq =
      List.map
        (fun (e : Obs.Tracer.event) -> (e.Obs.Tracer.ev_kind, e.Obs.Tracer.ev_name))
        s.Obs.Tracer.events
    in
    ((seq, s.Obs.Tracer.counters), Sim.Driver.snapshot d 2)
  in
  let (seq1, ctr1), snap1 = run () in
  let (seq2, ctr2), snap2 = run () in
  Alcotest.(check int) "same event count" (List.length seq1) (List.length seq2);
  if seq1 <> seq2 then Alcotest.fail "trace event sequences differ across runs";
  Alcotest.(check (list (pair string (float 1e-9))))
    "same counters" ctr1 ctr2;
  List.iter2
    (fun (n, a) (_, b) ->
      if not (Helpers.same_float a b) then
        Alcotest.failf "re-run changed %s: %.17g vs %.17g" n a b)
    snap1 snap2;
  Obs.Tracer.reset ()

let test_cells_independent () =
  (* perturb one cell; the others must be unaffected (no cross-cell leaks
     through the vector lanes) *)
  let d = Sim.Driver.create (Lazy.force gen8) ~ncells:16 ~dt:0.01 in
  Sim.Driver.set_ext d "Vm" 5 (-20.0);
  Sim.Driver.set_state d "m" 5 0.9;
  let d_ref = Sim.Driver.create (Lazy.force gen8) ~ncells:16 ~dt:0.01 in
  for _ = 1 to 50 do
    Sim.Driver.step d;
    Sim.Driver.step d_ref
  done;
  Alcotest.(check bool) "perturbed cell differs" true
    (not (Helpers.same_float (Sim.Driver.vm d 5) (Sim.Driver.vm d_ref 5)));
  (* neighbours in the same vector block (cells 0-7) stay identical *)
  List.iter
    (fun c ->
      if not (Helpers.same_float (Sim.Driver.vm d c) (Sim.Driver.vm d_ref c))
      then Alcotest.failf "cell %d leaked from the perturbed lane" c)
    [ 0; 1; 2; 3; 4; 6; 7; 8; 15 ]

let test_step_timed () =
  let d = Sim.Driver.create (Lazy.force gen8) ~ncells:8 ~dt:0.01 in
  let t = Sim.Driver.step_timed d in
  Alcotest.(check bool) "returns a plausible wall time" true
    (t >= 0.0 && t < 5.0);
  Helpers.fcheck "clock advanced" 0.01 (Sim.Driver.time d)

let test_accessor_errors () =
  let d = Sim.Driver.create (Lazy.force gen8) ~ncells:4 ~dt:0.01 in
  (match Sim.Driver.state d "not_a_state" 0 with
  | exception Sim.Driver.Driver_error _ -> ()
  | _ -> Alcotest.fail "unknown state must raise");
  match Sim.Driver.ext d "not_an_ext" 0 with
  | exception Sim.Driver.Driver_error _ -> ()
  | _ -> Alcotest.fail "unknown external must raise"

let test_create_validation () =
  (match Sim.Driver.create (Lazy.force gen8) ~ncells:0 ~dt:0.01 with
  | exception Sim.Driver.Driver_error _ -> ()
  | _ -> Alcotest.fail "ncells = 0 must be rejected");
  match Sim.Driver.create (Lazy.force gen8) ~ncells:4 ~dt:0.0 with
  | exception Sim.Driver.Driver_error _ -> ()
  | _ -> Alcotest.fail "dt = 0 must be rejected"

let test_compute_only_leaves_vm () =
  (* compute_stage must not touch Vm (only the membrane update does) *)
  let d = Sim.Driver.create (Lazy.force gen8) ~ncells:4 ~dt:0.01 in
  let vm0 = Sim.Driver.vm d 0 in
  Sim.Driver.compute_stage d;
  Helpers.fcheck "Vm untouched by compute stage" vm0 (Sim.Driver.vm d 0);
  (* but Iion was written *)
  Alcotest.(check bool) "Iion computed" true
    (Float.abs (Sim.Driver.ext d "Iion" 0) > 0.0)

let test_tension_external () =
  (* models with extra outputs (StressLumens exposes Tension) *)
  let m = Models.Registry.model (Models.Registry.find_exn "StressLumens") in
  let g = K.generate (C.mlir ~width:4) m in
  let d = Sim.Driver.create g ~ncells:4 ~dt:0.01 in
  let stim = Sim.Stim.make ~amplitude:60.0 ~start:0.5 ~duration:2.0 () in
  for _ = 1 to 4000 do
    Sim.Driver.step ~stim d
  done;
  Alcotest.(check bool) "tension develops under pacing" true
    (Sim.Driver.ext d "Tension" 0 > 0.0)

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "vector padding" `Quick test_padding;
    Alcotest.test_case "reset reproducible" `Quick test_reset_reproducible;
    Alcotest.test_case "re-run trace identical" `Quick
      test_rerun_identical_trace;
    Alcotest.test_case "cells independent across lanes" `Quick
      test_cells_independent;
    Alcotest.test_case "step_timed" `Quick test_step_timed;
    Alcotest.test_case "accessor errors" `Quick test_accessor_errors;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "compute stage leaves Vm" `Quick
      test_compute_only_leaves_vm;
    Alcotest.test_case "extra output externals" `Quick test_tension_external;
  ]
