(* Fused threaded-code engine tests: differential equivalence against the
   closure engine and the reference interpreter on the full model catalogue
   and on random straight-line IR, Domain-parallel determinism, and the
   shared compile cache. *)

open Exec
module K = Codegen.Kernel
module C = Codegen.Config

let stim = Sim.Stim.make ~amplitude:40.0 ~start:0.5 ~duration:1.0 ()

(* The three code-generation points that matter for engine coverage:
   scalar AoS (baseline), vector AoSoA (contiguous vector loads/stores),
   vector AoS (the gather/scatter path). *)
let configs =
  [ ("scalar", C.baseline); ("aosoa", C.mlir ~width:4); ("aos-vec", C.autovec ~width:4) ]

let check_snapshots ~ctx a b =
  List.iter2
    (fun (n, x) (_, y) ->
      if not (Float.is_finite x) then Alcotest.failf "%s: %s not finite" ctx n;
      if not (Helpers.same_float x y) then
        Alcotest.failf "%s: mismatch on %s: %.17g vs %.17g" ctx n x y)
    a b

(* fused == closure == interpreter on all 43 models, 100 steps, both
   layouts.  Kernels come through the shared cache, so each model x config
   compiles once for all three engines. *)
let test_all_models_engines_agree () =
  List.iter
    (fun (e : Models.Model_def.entry) ->
      List.iter
        (fun (cname, cfg) ->
          let g = Codegen.Cache.generate_named cfg ~name:e.name (fun () ->
              Models.Registry.model e) in
          let mk engine = Sim.Driver.create ~engine g ~ncells:8 ~dt:0.01 in
          let df = mk Sim.Driver.Fused in
          let dc = mk Sim.Driver.Compiled in
          let dr = mk Sim.Driver.Reference in
          for _ = 1 to 100 do
            Sim.Driver.step ~stim df;
            Sim.Driver.step ~stim dc;
            Sim.Driver.step ~stim dr
          done;
          List.iter
            (fun cell ->
              let ctx = Printf.sprintf "%s/%s cell %d" e.name cname cell in
              let sf = Sim.Driver.snapshot df cell in
              check_snapshots ~ctx:(ctx ^ " fused/closure") sf
                (Sim.Driver.snapshot dc cell);
              check_snapshots ~ctx:(ctx ^ " fused/interp") sf
                (Sim.Driver.snapshot dr cell))
            [ 0; 5 ])
        configs)
    Models.Registry.all

(* Domain-parallel stepping must be bitwise-identical to sequential: the
   chunking only partitions AoSoA blocks, it never changes per-cell math. *)
let test_all_models_parallel_identical () =
  List.iter
    (fun (e : Models.Model_def.entry) ->
      let g = Codegen.Cache.generate_named (C.mlir ~width:4) ~name:e.name
          (fun () -> Models.Registry.model e) in
      let dp = Sim.Driver.create g ~ncells:16 ~dt:0.01 in
      let ds = Sim.Driver.create g ~ncells:16 ~dt:0.01 in
      for _ = 1 to 50 do
        Sim.Driver.step ~nthreads:4 ~stim dp;
        Sim.Driver.step ~stim ds
      done;
      for cell = 0 to 15 do
        check_snapshots
          ~ctx:(Printf.sprintf "%s parallel cell %d" e.name cell)
          (Sim.Driver.snapshot dp cell)
          (Sim.Driver.snapshot ds cell)
      done)
    Models.Registry.all

(* -- random straight-line IR ------------------------------------------- *)

let fused_scalar m x y =
  match Fused.run m "f" [| Rt.F x; Rt.F y |] with
  | [| Rt.F v |] -> v
  | _ -> Alcotest.fail "expected one f64 result"

let fused_matches_closure =
  Helpers.qtest ~count:300 "fused == closure on random scalar exprs"
    QCheck.(
      triple (Helpers.arbitrary_expr [ "x"; "y" ])
        (QCheck.float_range (-3.0) 3.0) (QCheck.float_range (-3.0) 3.0))
    (fun (e, x, y) ->
      let m = Test_engine.lower_scalar e in
      Ir.Verifier.verify_module_exn m;
      Helpers.same_float (fused_scalar m x y) (Test_engine.run_scalar m x y))

let fused_matches_interp =
  Helpers.qtest ~count:200 "fused == interpreter on random scalar exprs"
    QCheck.(
      triple (Helpers.arbitrary_expr [ "x"; "y" ])
        (QCheck.float_range (-3.0) 3.0) (QCheck.float_range (-3.0) 3.0))
    (fun (e, x, y) ->
      let m = Test_engine.lower_scalar e in
      Helpers.same_float (fused_scalar m x y) (Test_engine.interp_scalar m x y))

let fused_vector_matches_scalar =
  Helpers.qtest ~count:200 "fused vector lanes == fused scalar"
    (Helpers.arbitrary_expr [ "x"; "y" ])
    (fun e ->
      let w = 4 in
      let ms = Test_engine.lower_scalar e in
      let mv = Test_engine.lower_vector ~w e in
      Ir.Verifier.verify_module_exn mv;
      let xs = [| 0.5; -1.25; 2.0; -0.125 |] in
      let ys = [| 1.5; 0.25; -2.5; 3.0 |] in
      let vx = Float.Array.init w (fun i -> xs.(i)) in
      let vy = Float.Array.init w (fun i -> ys.(i)) in
      match Fused.run mv "f" [| Rt.VF vx; Rt.VF vy |] with
      | [| Rt.VF out |] ->
          Array.for_all Fun.id
            (Array.init w (fun i ->
                 Helpers.same_float (Float.Array.get out i)
                   (fused_scalar ms xs.(i) ys.(i))))
      | _ -> false)

(* -- compile cache ------------------------------------------------------ *)

let test_cache_hit_bitwise_identical () =
  Codegen.Cache.clear ();
  let m = Models.Registry.model (Models.Registry.find_exn "LuoRudy91") in
  let cfg = C.mlir ~width:4 in
  let g1 = Codegen.Cache.generate cfg m in
  let g2 = Codegen.Cache.generate cfg m in
  let s = Codegen.Cache.stats () in
  Alcotest.(check int) "one miss" 1 s.Codegen.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Codegen.Cache.hits;
  Alcotest.(check bool) "hit returns the same kernel" true (g1 == g2);
  (* a cached kernel must execute bitwise-identically to a fresh compile *)
  let fresh = K.generate cfg m in
  let dc = Sim.Driver.create g2 ~ncells:8 ~dt:0.01 in
  let df = Sim.Driver.create fresh ~ncells:8 ~dt:0.01 in
  for _ = 1 to 50 do
    Sim.Driver.step ~stim dc;
    Sim.Driver.step ~stim df
  done;
  check_snapshots ~ctx:"cached vs fresh"
    (Sim.Driver.snapshot dc 3) (Sim.Driver.snapshot df 3)

let test_cache_distinguishes_configs () =
  Codegen.Cache.clear ();
  let m = Models.Registry.model (Models.Registry.find_exn "MitchellSchaeffer") in
  let g1 = Codegen.Cache.generate C.baseline m in
  let g2 = Codegen.Cache.generate (C.mlir ~width:4) m in
  let g3 = Codegen.Cache.generate ~optimize:false C.baseline m in
  Alcotest.(check bool) "widths are distinct entries" true (g1 != g2);
  Alcotest.(check bool) "pipelines are distinct entries" true (g1 != g3);
  let s = Codegen.Cache.stats () in
  Alcotest.(check int) "three misses, no aliasing" 3 s.Codegen.Cache.misses

let test_driver_defaults_to_fused () =
  let m = Models.Registry.model (Models.Registry.find_exn "MitchellSchaeffer") in
  let d = Sim.Driver.create_cached C.baseline m ~ncells:4 ~dt:0.01 in
  Alcotest.(check bool) "default engine is Fused" true
    (d.Sim.Driver.engine = Sim.Driver.Fused)

let suite =
  [
    Alcotest.test_case "all 43: fused == closure == interp, 100 steps" `Slow
      test_all_models_engines_agree;
    Alcotest.test_case "all 43: Domain-parallel == sequential" `Slow
      test_all_models_parallel_identical;
    fused_matches_closure;
    fused_matches_interp;
    fused_vector_matches_scalar;
    Alcotest.test_case "cache hit is bitwise-identical" `Quick
      test_cache_hit_bitwise_identical;
    Alcotest.test_case "cache keys on config and pipeline" `Quick
      test_cache_distinguishes_configs;
    Alcotest.test_case "driver defaults to fused engine" `Quick
      test_driver_defaults_to_fused;
  ]
