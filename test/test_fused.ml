(* Fused threaded-code engine tests: differential equivalence against the
   closure engine and the reference interpreter on the full model catalogue
   and on random straight-line IR, Domain-parallel determinism, and the
   shared compile cache. *)

open Exec
module K = Codegen.Kernel
module C = Codegen.Config
module B = Ir.Builder

let stim = Sim.Stim.make ~amplitude:40.0 ~start:0.5 ~duration:1.0 ()

(* The three code-generation points that matter for engine coverage:
   scalar AoS (baseline), vector AoSoA (contiguous vector loads/stores),
   vector AoS (the gather/scatter path). *)
let configs =
  [ ("scalar", C.baseline); ("aosoa", C.mlir ~width:4); ("aos-vec", C.autovec ~width:4) ]

let check_snapshots ~ctx a b =
  List.iter2
    (fun (n, x) (_, y) ->
      if not (Float.is_finite x) then Alcotest.failf "%s: %s not finite" ctx n;
      if not (Helpers.same_float x y) then
        Alcotest.failf "%s: mismatch on %s: %.17g vs %.17g" ctx n x y)
    a b

(* fused == closure == interpreter on all 43 models, 100 steps, both
   layouts.  Kernels come through the shared cache, so each model x config
   compiles once for all three engines. *)
let test_all_models_engines_agree () =
  List.iter
    (fun (e : Models.Model_def.entry) ->
      List.iter
        (fun (cname, cfg) ->
          let g = Codegen.Cache.generate_named cfg ~name:e.name (fun () ->
              Models.Registry.model e) in
          let mk engine = Sim.Driver.create ~engine g ~ncells:8 ~dt:0.01 in
          let df = mk Sim.Driver.Fused in
          let dc = mk Sim.Driver.Compiled in
          let dr = mk Sim.Driver.Reference in
          for _ = 1 to 100 do
            Sim.Driver.step ~stim df;
            Sim.Driver.step ~stim dc;
            Sim.Driver.step ~stim dr
          done;
          List.iter
            (fun cell ->
              let ctx = Printf.sprintf "%s/%s cell %d" e.name cname cell in
              let sf = Sim.Driver.snapshot df cell in
              check_snapshots ~ctx:(ctx ^ " fused/closure") sf
                (Sim.Driver.snapshot dc cell);
              check_snapshots ~ctx:(ctx ^ " fused/interp") sf
                (Sim.Driver.snapshot dr cell))
            [ 0; 5 ])
        configs)
    Models.Registry.all

(* Domain-parallel stepping must be bitwise-identical to sequential: the
   chunking only partitions AoSoA blocks, it never changes per-cell math. *)
let test_all_models_parallel_identical () =
  List.iter
    (fun (e : Models.Model_def.entry) ->
      let g = Codegen.Cache.generate_named (C.mlir ~width:4) ~name:e.name
          (fun () -> Models.Registry.model e) in
      let dp = Sim.Driver.create g ~ncells:16 ~dt:0.01 in
      let ds = Sim.Driver.create g ~ncells:16 ~dt:0.01 in
      for _ = 1 to 50 do
        Sim.Driver.step ~nthreads:4 ~stim dp;
        Sim.Driver.step ~stim ds
      done;
      for cell = 0 to 15 do
        check_snapshots
          ~ctx:(Printf.sprintf "%s parallel cell %d" e.name cell)
          (Sim.Driver.snapshot dp cell)
          (Sim.Driver.snapshot ds cell)
      done)
    Models.Registry.all

(* -- random straight-line IR ------------------------------------------- *)

let fused_scalar m x y =
  match Fused.run m "f" [| Rt.F x; Rt.F y |] with
  | [| Rt.F v |] -> v
  | _ -> Alcotest.fail "expected one f64 result"

let fused_matches_closure =
  Helpers.qtest ~count:300 "fused == closure on random scalar exprs"
    QCheck.(
      triple (Helpers.arbitrary_expr [ "x"; "y" ])
        (QCheck.float_range (-3.0) 3.0) (QCheck.float_range (-3.0) 3.0))
    (fun (e, x, y) ->
      let m = Test_engine.lower_scalar e in
      Ir.Verifier.verify_module_exn m;
      Helpers.same_float (fused_scalar m x y) (Test_engine.run_scalar m x y))

let fused_matches_interp =
  Helpers.qtest ~count:200 "fused == interpreter on random scalar exprs"
    QCheck.(
      triple (Helpers.arbitrary_expr [ "x"; "y" ])
        (QCheck.float_range (-3.0) 3.0) (QCheck.float_range (-3.0) 3.0))
    (fun (e, x, y) ->
      let m = Test_engine.lower_scalar e in
      Helpers.same_float (fused_scalar m x y) (Test_engine.interp_scalar m x y))

let fused_vector_matches_scalar =
  Helpers.qtest ~count:200 "fused vector lanes == fused scalar"
    (Helpers.arbitrary_expr [ "x"; "y" ])
    (fun e ->
      let w = 4 in
      let ms = Test_engine.lower_scalar e in
      let mv = Test_engine.lower_vector ~w e in
      Ir.Verifier.verify_module_exn mv;
      let xs = [| 0.5; -1.25; 2.0; -0.125 |] in
      let ys = [| 1.5; 0.25; -2.5; 3.0 |] in
      let vx = Float.Array.init w (fun i -> xs.(i)) in
      let vy = Float.Array.init w (fun i -> ys.(i)) in
      match Fused.run mv "f" [| Rt.VF vx; Rt.VF vy |] with
      | [| Rt.VF out |] ->
          Array.for_all Fun.id
            (Array.init w (fun i ->
                 Helpers.same_float (Float.Array.get out i)
                   (fused_scalar ms xs.(i) ys.(i))))
      | _ -> false)

(* -- load/store fusion windows ------------------------------------------ *)

let seeded_buf n = Float.Array.init n (fun i -> float_of_int (i + 1) /. 3.0)

let check_bufs ~ctx (a : floatarray) (b : floatarray) =
  for i = 0 to Float.Array.length a - 1 do
    if not (Helpers.same_float (Float.Array.get a i) (Float.Array.get b i))
    then
      Alcotest.failf "%s: buffer slot %d: %.17g vs %.17g" ctx i
        (Float.Array.get a i) (Float.Array.get b i)
  done

(* vec_load mem[0..3]; add; vec_store mem[1..4].  The windows overlap, so
   the load-op-store triple must NOT fuse into a VLos (which would
   interleave lane reads and writes); the footprint alias check keeps the
   full-width load ahead of the store. *)
let test_vlos_aliasing_not_fused () =
  let m = Ir.Func.create_module "alias" in
  let c = B.create_ctx () in
  let vec4 = Ir.Ty.Vec (4, Ir.Ty.F64) in
  Ir.Func.add_func m
    (B.func c ~name:"f" ~params:[ Ir.Ty.Memref; vec4 ] ~results:[ Ir.Ty.F64 ]
       (fun b args ->
         let mem = List.nth args 0 and y = List.nth args 1 in
         let v = B.vec_load b ~width:4 ~mem ~idx:(B.consti b 0) in
         let s = B.addf b v y in
         B.vec_store b ~vec:s ~mem ~idx:(B.consti b 1);
         B.ret b [ B.constf b 0.0 ]));
  Ir.Verifier.verify_module_exn m;
  let y = Float.Array.of_list [ 0.25; -1.5; 2.0; 0.125 ] in
  let bf = seeded_buf 8 and bi = seeded_buf 8 in
  ignore (Fused.run m "f" [| Rt.M bf; Rt.VF y |]);
  ignore (Interp.run m "f" [| Rt.M bi; Rt.VF y |]);
  check_bufs ~ctx:"aliasing load/store triple" bf bi

(* t = mulf a b feeds only the fusion window's middle op, so the pairing
   pass defers it into a VFma.  The VLos window around the same add must
   refuse to consume that add: doing so would leave the deferred multiply
   unemitted and read a stale slot. *)
let test_vlos_claimed_op_not_consumed () =
  let m = Ir.Func.create_module "claimed" in
  let c = B.create_ctx () in
  let vec4 = Ir.Ty.Vec (4, Ir.Ty.F64) in
  Ir.Func.add_func m
    (B.func c
       ~name:"f"
       ~params:[ Ir.Ty.Memref; vec4; vec4 ]
       ~results:[ Ir.Ty.F64 ]
       (fun b args ->
         let mem = List.nth args 0 in
         let a = List.nth args 1 and b2 = List.nth args 2 in
         let t = B.mulf b a b2 in
         let v = B.vec_load b ~width:4 ~mem ~idx:(B.consti b 0) in
         let s = B.addf b t v in
         B.vec_store b ~vec:s ~mem ~idx:(B.consti b 4);
         B.ret b [ B.constf b 0.0 ]));
  Ir.Verifier.verify_module_exn m;
  let va = Float.Array.of_list [ 1.5; -0.25; 3.0; 0.5 ] in
  let vb = Float.Array.of_list [ 2.0; 4.0; -1.0; 8.0 ] in
  let bf = seeded_buf 8 and bi = seeded_buf 8 in
  ignore (Fused.run m "f" [| Rt.M bf; Rt.VF va; Rt.VF vb |]);
  ignore (Interp.run m "f" [| Rt.M bi; Rt.VF va; Rt.VF vb |]);
  check_bufs ~ctx:"pair-claimed add in fusion window" bf bi

(* -- bounds-check elision ----------------------------------------------- *)

(* Eliding proved-inbounds checks must not change a single bit of any
   trajectory, on any engine, on any model. *)
let test_all_models_elide_bitwise_identical () =
  List.iter
    (fun (e : Models.Model_def.entry) ->
      List.iter
        (fun (cname, cfg) ->
          let g = Codegen.Cache.generate_named cfg ~name:e.name (fun () ->
              Models.Registry.model e) in
          let mk engine elide =
            Sim.Driver.create ~engine ~elide g ~ncells:8 ~dt:0.01
          in
          let drivers =
            [ mk Sim.Driver.Fused true; mk Sim.Driver.Fused false;
              mk Sim.Driver.Compiled true; mk Sim.Driver.Compiled false ]
          in
          for _ = 1 to 50 do
            List.iter (fun d -> Sim.Driver.step ~stim d) drivers
          done;
          match List.map (fun d -> Sim.Driver.snapshot d 5) drivers with
          | ref :: rest ->
              List.iteri
                (fun k s ->
                  check_snapshots
                    ~ctx:(Printf.sprintf "%s/%s elide variant %d" e.name
                            cname (k + 1))
                    ref s)
                rest
          | [] -> assert false)
        configs)
    Models.Registry.all

(* -- compile cache ------------------------------------------------------ *)

let test_cache_hit_bitwise_identical () =
  Codegen.Cache.clear ();
  let m = Models.Registry.model (Models.Registry.find_exn "LuoRudy91") in
  let cfg = C.mlir ~width:4 in
  let g1 = Codegen.Cache.generate cfg m in
  let g2 = Codegen.Cache.generate cfg m in
  let s = Codegen.Cache.stats () in
  Alcotest.(check int) "one miss" 1 s.Codegen.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Codegen.Cache.hits;
  Alcotest.(check bool) "hit returns the same kernel" true (g1 == g2);
  (* a cached kernel must execute bitwise-identically to a fresh compile *)
  let fresh = K.generate cfg m in
  let dc = Sim.Driver.create g2 ~ncells:8 ~dt:0.01 in
  let df = Sim.Driver.create fresh ~ncells:8 ~dt:0.01 in
  for _ = 1 to 50 do
    Sim.Driver.step ~stim dc;
    Sim.Driver.step ~stim df
  done;
  check_snapshots ~ctx:"cached vs fresh"
    (Sim.Driver.snapshot dc 3) (Sim.Driver.snapshot df 3)

let test_cache_distinguishes_configs () =
  Codegen.Cache.clear ();
  let m = Models.Registry.model (Models.Registry.find_exn "MitchellSchaeffer") in
  let g1 = Codegen.Cache.generate C.baseline m in
  let g2 = Codegen.Cache.generate (C.mlir ~width:4) m in
  let g3 = Codegen.Cache.generate ~optimize:false C.baseline m in
  Alcotest.(check bool) "widths are distinct entries" true (g1 != g2);
  Alcotest.(check bool) "pipelines are distinct entries" true (g1 != g3);
  let s = Codegen.Cache.stats () in
  Alcotest.(check int) "three misses, no aliasing" 3 s.Codegen.Cache.misses

let test_cache_lru_eviction () =
  Codegen.Cache.clear ();
  Fun.protect
    ~finally:(fun () ->
      (* other tests share the process-wide cache: restore unbounded *)
      Codegen.Cache.set_capacity None;
      Codegen.Cache.clear ())
    (fun () ->
      (match Codegen.Cache.set_capacity (Some 0) with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "capacity 0 must be rejected");
      Codegen.Cache.set_capacity (Some 2);
      let m =
        Models.Registry.model (Models.Registry.find_exn "MitchellSchaeffer")
      in
      let ga = Codegen.Cache.generate C.baseline m in
      let _ = Codegen.Cache.generate (C.mlir ~width:2) m in
      (* touch the oldest entry so LRU order is baseline < width-2 *)
      let ga' = Codegen.Cache.generate C.baseline m in
      Alcotest.(check bool) "touch is a hit" true (ga == ga');
      (* third insert over capacity 2 evicts width-2 (the LRU entry) *)
      let _ = Codegen.Cache.generate (C.mlir ~width:4) m in
      let s = Codegen.Cache.stats () in
      Alcotest.(check int) "one eviction" 1 s.Codegen.Cache.evictions;
      (* the survivor still hits; the victim must recompile *)
      let ga'' = Codegen.Cache.generate C.baseline m in
      Alcotest.(check bool) "LRU survivor kept" true (ga == ga'');
      let misses_before = (Codegen.Cache.stats ()).Codegen.Cache.misses in
      let _ = Codegen.Cache.generate (C.mlir ~width:2) m in
      Alcotest.(check int) "evicted entry recompiles"
        (misses_before + 1)
        (Codegen.Cache.stats ()).Codegen.Cache.misses)

let test_driver_defaults_to_fused () =
  let m = Models.Registry.model (Models.Registry.find_exn "MitchellSchaeffer") in
  let d = Sim.Driver.create_cached C.baseline m ~ncells:4 ~dt:0.01 in
  Alcotest.(check bool) "default engine is Fused" true
    (d.Sim.Driver.engine = Sim.Driver.Fused)

let suite =
  [
    Alcotest.test_case "all 43: fused == closure == interp, 100 steps" `Slow
      test_all_models_engines_agree;
    Alcotest.test_case "all 43: Domain-parallel == sequential" `Slow
      test_all_models_parallel_identical;
    fused_matches_closure;
    fused_matches_interp;
    fused_vector_matches_scalar;
    Alcotest.test_case "aliasing load/store triple is not fused" `Quick
      test_vlos_aliasing_not_fused;
    Alcotest.test_case "fusion window spares pair-claimed ops" `Quick
      test_vlos_claimed_op_not_consumed;
    Alcotest.test_case "all 43: bounds-check elision is bitwise-identical"
      `Slow test_all_models_elide_bitwise_identical;
    Alcotest.test_case "cache hit is bitwise-identical" `Quick

      test_cache_hit_bitwise_identical;
    Alcotest.test_case "cache keys on config and pipeline" `Quick
      test_cache_distinguishes_configs;
    Alcotest.test_case "cache LRU eviction under capacity" `Quick
      test_cache_lru_eviction;
    Alcotest.test_case "driver defaults to fused engine" `Quick
      test_driver_defaults_to_fused;
  ]
