(* Health-monitor tests: streaming reducers against a straightforward
   oracle on NaN/Inf-salted arrays, watchdog trip semantics (policies,
   dedup, hard vs soft reasons), the monitored-vs-unmonitored bitwise
   differential over the whole model catalogue on both optimized
   engines, the disabled-path overhead guard, and the HTTP endpoint. *)

module H = Obs.Health
module C = Codegen.Config

let quiet = { H.default_config with H.stride = 1 }

(* -- streaming reducers == oracle ------------------------------------- *)

type oracle = {
  o_n : int;
  o_min : float;
  o_max : float;
  o_mean : float;
  o_nan : int;
  o_inf : int;
  o_range : int;
}

(* The straight-line reference: one pass, same observation order as the
   streaming reducer, so sums must agree bit for bit. *)
let oracle ~(gate : bool) (xs : float list) : oracle =
  let n = ref 0 and sum = ref 0.0 in
  let mn = ref Float.infinity and mx = ref Float.neg_infinity in
  let nan = ref 0 and inf = ref 0 and range = ref 0 in
  List.iter
    (fun x ->
      if Float.is_nan x then incr nan
      else if x = Float.infinity || x = Float.neg_infinity then incr inf
      else begin
        incr n;
        sum := !sum +. x;
        if x < !mn then mn := x;
        if x > !mx then mx := x;
        if gate && (x < 0.0 || x > 1.0) then incr range
      end)
    xs;
  {
    o_n = !n;
    o_min = (if !n = 0 then Float.nan else !mn);
    o_max = (if !n = 0 then Float.nan else !mx);
    o_mean = (if !n = 0 then Float.nan else !sum /. float_of_int !n);
    o_nan = !nan;
    o_inf = !inf;
    o_range = !range;
  }

let salted_float =
  QCheck.Gen.frequency
    [
      (5, QCheck.Gen.float_range (-2.0) 2.0);
      (2, QCheck.Gen.float_range (-500.0) 500.0);
      (1, QCheck.Gen.return Float.nan);
      (1, QCheck.Gen.return Float.infinity);
      (1, QCheck.Gen.return Float.neg_infinity);
    ]

let check_stat (vs : H.var_stat) (o : oracle) : bool =
  vs.H.vs_samples = o.o_n
  && Helpers.same_float vs.H.vs_min o.o_min
  && Helpers.same_float vs.H.vs_max o.o_max
  && Helpers.same_float vs.H.vs_mean o.o_mean
  && vs.H.vs_nan = o.o_nan && vs.H.vs_inf = o.o_inf
  && vs.H.vs_range = o.o_range

let reducer_oracle =
  (* two monitored variables (one gate) in a cell-major buffer, sampled
     in two chunks: merged statistics must equal the one-pass oracle *)
  let arb =
    QCheck.make
      ~print:(fun xs ->
        String.concat ";"
          (List.map (fun (a, b) -> Printf.sprintf "(%h,%h)" a b) xs))
      QCheck.Gen.(list_size (int_range 1 64) (pair salted_float salted_float))
  in
  Helpers.qtest ~count:300 "streaming reducers match oracle" arb (fun cells ->
      let n = List.length cells in
      let sv = Float.Array.create (2 * n) in
      List.iteri
        (fun c (a, g) ->
          Float.Array.set sv (2 * c) a;
          Float.Array.set sv ((2 * c) + 1) g)
        cells;
      let h =
        H.create ~cfg:quiet ~model:"oracle" ~layout:H.Cell_major ~nvars:2
          ~ncells_pad:n
          ~vars:
            [
              { H.v_name = "a"; v_slot = 0; v_gate = false };
              { H.v_name = "g"; v_slot = 1; v_gate = true };
            ]
          ~warn:(fun _ -> ())
          ()
      in
      let mid = n / 2 in
      H.sample_chunk h ~sv ~vm:None ~lo:0 ~hi:mid ~step:0;
      H.sample_chunk h ~sv ~vm:None ~lo:mid ~hi:n ~step:0;
      H.note_sampled h;
      let s = H.snapshot h in
      match s.H.hs_vars with
      | [ a_stat; g_stat; _vm ] ->
          check_stat a_stat (oracle ~gate:false (List.map fst cells))
          && check_stat g_stat (oracle ~gate:true (List.map snd cells))
          && s.H.hs_steps_sampled = 1
      | _ -> false)

let layout_oracle =
  (* the same salted values must reduce identically under all three
     layouts: only the indexing changes, never the observation *)
  let arb =
    QCheck.make
      ~print:(fun xs -> String.concat ";" (List.map (Printf.sprintf "%h") xs))
      QCheck.Gen.(list_size (int_range 4 40) salted_float)
  in
  Helpers.qtest ~count:100 "reducers agree across layouts" arb (fun xs ->
      let w = 4 in
      let n = (List.length xs + w - 1) / w * w in
      let xs = Array.of_list xs in
      let value c = if c < Array.length xs then xs.(c) else 0.0 in
      let nvars = 3 and slot = 1 in
      let index layout ~cell ~var =
        match layout with
        | H.Cell_major -> (cell * nvars) + var
        | H.Var_major -> (var * n) + cell
        | H.Blocked w -> (cell / w * nvars * w) + (var * w) + (cell mod w)
      in
      let stats =
        List.map
          (fun layout ->
            let sv = Float.Array.make (nvars * n) 0.0 in
            for c = 0 to n - 1 do
              Float.Array.set sv (index layout ~cell:c ~var:slot) (value c)
            done;
            let h =
              H.create ~cfg:quiet ~model:"layouts" ~layout ~nvars
                ~ncells_pad:n
                ~vars:[ { H.v_name = "x"; v_slot = slot; v_gate = false } ]
                ~warn:(fun _ -> ())
                ()
            in
            H.sample_chunk h ~sv ~vm:None ~lo:0 ~hi:n ~step:0;
            List.hd (H.snapshot h).H.hs_vars)
          [ H.Cell_major; H.Var_major; H.Blocked w ]
      in
      match stats with
      | [ a; b; c ] ->
          let eq (x : H.var_stat) (y : H.var_stat) =
            x.H.vs_samples = y.H.vs_samples
            && Helpers.same_float x.H.vs_min y.H.vs_min
            && Helpers.same_float x.H.vs_max y.H.vs_max
            && Helpers.same_float x.H.vs_mean y.H.vs_mean
            && x.H.vs_nan = y.H.vs_nan && x.H.vs_inf = y.H.vs_inf
          in
          eq a b && eq a c
      | _ -> false)

(* -- trip semantics ---------------------------------------------------- *)

let monitor ?(cfg = quiet) ?(warn = fun _ -> ()) ~gate () =
  H.create ~cfg ~model:"m" ~layout:H.Cell_major ~nvars:1 ~ncells_pad:4
    ~vars:[ { H.v_name = "x"; v_slot = 0; v_gate = gate } ]
    ~warn ()

let sample1 h v =
  let sv = Float.Array.make 4 0.0 in
  Float.Array.set sv 2 v;
  H.sample_chunk h ~sv ~vm:None ~lo:0 ~hi:4 ~step:7

let test_soft_and_hard_trips () =
  (* gate excursions trip but never mark the run unhealthy *)
  let h = monitor ~gate:true () in
  sample1 h 1.5;
  H.enforce h;
  Alcotest.(check bool) "gate trip recorded" true (H.tripped h);
  Alcotest.(check bool) "gate trip is soft" false (H.unhealthy h);
  (* NaN is hard *)
  let h = monitor ~gate:false () in
  sample1 h Float.nan;
  Alcotest.(check bool) "nan trips" true (H.tripped h);
  Alcotest.(check bool) "nan is hard" true (H.unhealthy h);
  (* membrane watchdog: out-of-window Vm is hard *)
  let h =
    H.create ~cfg:quiet ~model:"m" ~layout:H.Cell_major ~nvars:1 ~ncells_pad:2
      ~vars:[] ~warn:(fun _ -> ()) ()
  in
  let vm = Float.Array.make 2 0.0 in
  Float.Array.set vm 1 350.0;
  H.sample_chunk h ~sv:(Float.Array.make 2 0.0) ~vm:(Some vm) ~lo:0 ~hi:2
    ~step:3;
  Alcotest.(check bool) "vm watchdog is hard" true (H.unhealthy h);
  match (H.snapshot h).H.hs_trips with
  | [ t ] ->
      Alcotest.(check string) "reason" "vm-range" (H.reason_name t.H.t_reason);
      Alcotest.(check int) "cell" 1 t.H.t_cell;
      Alcotest.(check int) "step" 3 t.H.t_step
  | ts -> Alcotest.failf "expected one trip, got %d" (List.length ts)

let test_warn_reports_once () =
  let hits = ref [] in
  let h = monitor ~warn:(fun msg -> hits := msg :: !hits) ~gate:false () in
  sample1 h Float.nan;
  H.enforce h;
  sample1 h Float.nan;
  H.enforce h;
  (match !hits with
  | [ msg ] ->
      Alcotest.(check bool) "report names the variable" true
        (Helpers.contains msg "variable=x");
      Alcotest.(check bool) "report names the cell" true
        (Helpers.contains msg "cell=2");
      Alcotest.(check bool) "report names the step" true
        (Helpers.contains msg "step=7")
  | l -> Alcotest.failf "expected exactly one warning, got %d" (List.length l));
  Alcotest.(check int) "counters still accumulate" 2
    (let nan, _, _ = H.totals (H.snapshot h) in
     nan)

let test_abort_policy () =
  let h = monitor ~cfg:{ quiet with H.policy = H.Abort } ~gate:false () in
  sample1 h Float.infinity;
  (match H.enforce h with
  | exception H.Tripped msg ->
      Alcotest.(check bool) "abort names variable" true
        (Helpers.contains msg "variable=x")
  | () -> Alcotest.fail "Abort policy did not raise on an Inf trip");
  (* soft trips never abort *)
  let h = monitor ~cfg:{ quiet with H.policy = H.Abort } ~gate:true () in
  sample1 h 2.0;
  H.enforce h;
  Alcotest.(check bool) "gate trip with Abort only warns" true (H.tripped h)

let test_due_stride () =
  let h = monitor ~cfg:{ quiet with H.stride = 4 } ~gate:false () in
  Alcotest.(check (list bool))
    "stride-4 sampling pattern"
    [ true; false; false; false; true ]
    (List.map (fun step -> H.due h ~step) [ 0; 1; 2; 3; 4 ]);
  H.set_enabled h false;
  Alcotest.(check bool) "disabled is never due" false (H.due h ~step:0);
  (* a disabled monitor also ignores sample calls entirely *)
  sample1 h Float.nan;
  Alcotest.(check bool) "disabled never trips" false (H.tripped h)

let test_disabled_overhead () =
  (* the per-step gate must be one atomic load: a million [due] probes on
     a disabled monitor finish far inside any human-visible budget *)
  let h = monitor ~gate:false () in
  H.set_enabled h false;
  let t0 = Unix.gettimeofday () in
  let hits = ref 0 in
  for step = 1 to 1_000_000 do
    if H.due h ~step then incr hits
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "never due" 0 !hits;
  if dt > 2.0 then
    Alcotest.failf "1M disabled probes took %.2f s (expected well under 2 s)" dt

(* -- monitored runs are bitwise identical ------------------------------ *)

let test_monitored_bitwise_identical () =
  (* the observability guarantee extended to health sampling: monitoring
     a run (every step, every variable) never changes a single result
     bit, on any model, for both optimized engines *)
  List.iter
    (fun (e : Models.Model_def.entry) ->
      let m = Models.Registry.model e in
      let g = Codegen.Cache.generate (C.mlir ~width:4) m in
      List.iter
        (fun (ename, engine) ->
          let d = Sim.Driver.create ~engine g ~ncells:4 ~dt:0.01 in
          let stim = Sim.Stim.make ~amplitude:40.0 ~start:0.05 ~duration:0.1 () in
          let steps = 20 in
          for _ = 1 to steps do
            Sim.Driver.step ~stim d
          done;
          let plain = Sim.Driver.snapshot d 1 in
          Sim.Driver.reset d;
          Sim.Driver.enable_health ~cfg:quiet ~warn:(fun _ -> ()) d;
          for _ = 1 to steps do
            Sim.Driver.step ~stim d
          done;
          let monitored = Sim.Driver.snapshot d 1 in
          (match Sim.Driver.health_snapshot d with
          | None -> Alcotest.failf "%s/%s: monitor vanished" e.name ename
          | Some hs ->
              if hs.H.hs_steps_sampled <> steps then
                Alcotest.failf "%s/%s: sampled %d of %d steps" e.name ename
                  hs.H.hs_steps_sampled steps);
          Sim.Driver.disable_health d;
          List.iter2
            (fun (n, a) (_, b) ->
              if not (Helpers.same_float a b) then
                Alcotest.failf "%s/%s: monitoring changed %s: %.17g vs %.17g"
                  e.name ename n a b)
            plain monitored)
        [ ("fused", Sim.Driver.Fused); ("batched", Sim.Driver.Batched) ])
    Models.Registry.all

let test_parallel_matches_sequential () =
  (* chunk-local accumulators across worker Domains must merge to the
     same counts and extrema a one-Domain run produces *)
  let m = Models.Registry.model (Models.Registry.find_exn "TenTusscher") in
  let g = Codegen.Cache.generate (C.mlir ~width:4) m in
  let totals nthreads =
    let d = Sim.Driver.create g ~ncells:64 ~dt:0.01 in
    Sim.Driver.enable_health ~cfg:quiet ~warn:(fun _ -> ()) d;
    let stim = Sim.Stim.make ~amplitude:40.0 ~start:0.05 ~duration:0.1 () in
    for _ = 1 to 10 do
      Sim.Driver.step ~nthreads ~stim d
    done;
    let hs = Option.get (Sim.Driver.health_snapshot d) in
    Sim.Driver.disable_health d;
    List.map
      (fun (vs : H.var_stat) ->
        (vs.H.vs_name, vs.H.vs_samples, vs.H.vs_min, vs.H.vs_max, vs.H.vs_nan))
      hs.H.hs_vars
  in
  let seq = totals 1 and par = totals 4 in
  List.iter2
    (fun (n, c1, mn1, mx1, nan1) (_, c2, mn2, mx2, nan2) ->
      if
        c1 <> c2 || nan1 <> nan2
        || not (Helpers.same_float mn1 mn2 && Helpers.same_float mx1 mx2)
      then Alcotest.failf "parallel health diverged on %s" n)
    seq par

let test_driver_abort_names_trip () =
  (* a deliberately divergent model under the Abort policy: the compute
     stage must raise with a structured report *)
  let src =
    "Vm; .external(); .nodal();\nIion; .external(); .nodal();\n\
     Vm_init = -65.0;\nx; x_init = 10.0;\ndiff_x = -100.0*x*x;\n\
     Iion = 0.0*x;\n"
  in
  let m = Easyml.Sema.analyze_source ~name:"diverges" src in
  let g = Codegen.Cache.generate (C.mlir ~width:4) m in
  let d = Sim.Driver.create g ~ncells:8 ~dt:0.01 in
  Sim.Driver.enable_health
    ~cfg:{ quiet with H.policy = H.Abort }
    ~warn:(fun _ -> ())
    d;
  let rec drive n =
    if n > 100 then Alcotest.fail "divergent model never tripped"
    else
      match Sim.Driver.step d with
      | () -> drive (n + 1)
      | exception H.Tripped msg ->
          List.iter
            (fun part ->
              if not (Helpers.contains msg part) then
                Alcotest.failf "report %S lacks %S" msg part)
            [ "model=diverges"; "variable=x"; "cell="; "step="; "reason=" ]
  in
  drive 1;
  Sim.Driver.disable_health d

(* -- HTTP endpoint ----------------------------------------------------- *)

let http_request ?(meth = "GET") (port : int) (path : string) : string =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf "%s %s HTTP/1.1\r\nHost: localhost\r\n\r\n" meth path
      in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 256 in
      let bytes = Bytes.create 1024 in
      let rec drain () =
        match Unix.read fd bytes 0 (Bytes.length bytes) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf bytes 0 n;
            drain ()
        | exception Unix.Unix_error _ -> ()
      in
      drain ();
      Buffer.contents buf)

let status_of (resp : string) : int =
  (* "HTTP/1.1 200 OK" *)
  match String.split_on_char ' ' resp with
  | _ :: code :: _ -> ( try int_of_string code with _ -> -1)
  | _ -> -1

let test_httpd_serves () =
  let calls = Atomic.make 0 in
  let server =
    Obs.Httpd.start ~port:0 (fun path ->
        Atomic.incr calls;
        if path = "/metrics" then
          Some
            {
              Obs.Httpd.status = 200;
              content_type = "text/plain";
              body = "limpetmlir_up 1\n";
            }
        else if path = "/boom" then failwith "handler exploded"
        else None)
  in
  Fun.protect
    ~finally:(fun () -> Obs.Httpd.stop server)
    (fun () ->
      let port = Obs.Httpd.port server in
      Alcotest.(check bool) "ephemeral port picked" true (port > 0);
      let ok = http_request port "/metrics" in
      Alcotest.(check int) "metrics 200" 200 (status_of ok);
      Alcotest.(check bool) "body served" true
        (Helpers.contains ok "limpetmlir_up 1");
      Alcotest.(check int) "unknown path 404" 404
        (status_of (http_request port "/nope"));
      Alcotest.(check int) "raising handler 500" 500
        (status_of (http_request port "/boom"));
      Alcotest.(check int) "non-GET 405" 405
        (status_of (http_request ~meth:"POST" port "/metrics"));
      (* HEAD: same status and headers as GET — including the
         Content-Length of the body it would have sent — but no body *)
      let head = http_request ~meth:"HEAD" port "/metrics" in
      Alcotest.(check int) "HEAD 200" 200 (status_of head);
      Alcotest.(check bool) "HEAD carries the GET content length" true
        (Helpers.contains head
           (Printf.sprintf "Content-Length: %d"
              (String.length "limpetmlir_up 1\n")));
      Alcotest.(check bool) "HEAD sends no body" false
        (Helpers.contains head "limpetmlir_up");
      Alcotest.(check int) "HEAD on unknown path 404" 404
        (status_of (http_request ~meth:"HEAD" port "/nope"));
      (* every response declares its length (GET includes the body) *)
      Alcotest.(check bool) "GET declares Content-Length" true
        (Helpers.contains ok
           (Printf.sprintf "Content-Length: %d"
              (String.length "limpetmlir_up 1\n")));
      Alcotest.(check bool) "handler ran" true (Atomic.get calls > 0));
  (* stop is idempotent, and the port is released for a new server *)
  Obs.Httpd.stop server;
  let again = Obs.Httpd.start ~port:0 (fun _ -> None) in
  Obs.Httpd.stop again

let suite =
  [
    reducer_oracle;
    layout_oracle;
    Alcotest.test_case "soft and hard trips" `Quick test_soft_and_hard_trips;
    Alcotest.test_case "warn reports once per (var, reason)" `Quick
      test_warn_reports_once;
    Alcotest.test_case "abort policy raises on hard trips" `Quick
      test_abort_policy;
    Alcotest.test_case "due honors stride and enable" `Quick test_due_stride;
    Alcotest.test_case "disabled monitoring overhead" `Quick
      test_disabled_overhead;
    Alcotest.test_case "monitored runs bitwise identical (43 models)" `Quick
      test_monitored_bitwise_identical;
    Alcotest.test_case "parallel sampling matches sequential" `Quick
      test_parallel_matches_sequential;
    Alcotest.test_case "driver abort names the trip" `Quick
      test_driver_abort_names_trip;
    Alcotest.test_case "httpd serves, routes and stops" `Quick
      test_httpd_serves;
  ]
