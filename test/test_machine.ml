(* Machine-model tests: cost analysis on known kernels, performance-model
   monotonicity, ERT ceilings, roofline helpers, statistics. *)

open Ir

(* a hand-written kernel with exactly known per-iteration costs *)
let tiny_kernel () =
  let c = Builder.create_ctx () in
  let m = Func.create_module "tiny" in
  Func.add_func m
    (Builder.func c ~name:"compute"
       ~params:[ Ty.I64; Ty.I64; Ty.Memref ]
       ~results:[]
       (fun b args ->
         let lb, ub, buf =
           match args with [ a; b'; c' ] -> (a, b', c') | _ -> assert false
         in
         let one = Builder.consti b 1 in
         let _ =
           Builder.for_ b ~lb ~ub ~step:one ~inits:[] (fun ~iv ~iters:_ ->
               let x = Builder.load b ~mem:buf ~idx:iv in
               let y = Builder.mulf b x x in
               let z = Builder.math b "exp" [ y ] in
               Builder.store b z ~mem:buf ~idx:iv;
               [])
         in
         Builder.ret b []));
  m

let test_kcost_counts () =
  let m = tiny_kernel () in
  let f = Option.get (Func.find_func m "compute") in
  let a = Machine.Arch.scalar in
  let k = Machine.Kcost.analyze a ~scalar_math:true f in
  (* per cell: 1 load + 1 store (16 bytes), 1 mul (1 flop), 1 exp (20 flops) *)
  Helpers.fcheck "bytes" 16.0 k.Machine.Kcost.bytes_per_cell;
  Helpers.fcheck "flops" 21.0 k.Machine.Kcost.flops_per_cell;
  Helpers.fcheck "loads" 1.0 k.Machine.Kcost.loads_per_cell;
  Helpers.fcheck "stores" 1.0 k.Machine.Kcost.stores_per_cell;
  (* cycles: load 1 + store 1 + mul 1 + exp libm 2.4*20 + loop 2 + consts *)
  Alcotest.(check bool) "cycles in a plausible band" true
    (k.Machine.Kcost.cycles_per_cell > 50.0
    && k.Machine.Kcost.cycles_per_cell < 60.0)

let test_kcost_vector_amortizes () =
  (* the same model kernel at width 8 must cost less per cell *)
  let m = Models.Registry.model (Models.Registry.find_exn "BeelerReuter") in
  let ks = Machine.Kcost.of_kernel (Codegen.Kernel.generate Codegen.Config.baseline m) in
  let kv =
    Machine.Kcost.of_kernel (Codegen.Kernel.generate (Codegen.Config.mlir ~width:8) m)
  in
  Alcotest.(check bool) "vector cheaper per cell" true
    (kv.Machine.Kcost.cycles_per_cell < ks.Machine.Kcost.cycles_per_cell /. 2.0)

let test_perfmodel_thread_scaling () =
  let m = Models.Registry.model (Models.Registry.find_exn "TenTusscher") in
  let g = Codegen.Kernel.generate Codegen.Config.baseline m in
  let t n =
    (Machine.Perfmodel.run_kernel g ~ncells:8192 ~steps:1000 ~nthreads:n)
      .Machine.Perfmodel.seconds
  in
  (* compute-bound large model: near-linear early scaling *)
  Alcotest.(check bool) "2 threads ~2x" true (t 1 /. t 2 > 1.8);
  Alcotest.(check bool) "monotone to 32" true (t 32 < t 16 && t 16 < t 8);
  (* speedup saturates below ideal at 32 threads (sync overhead) *)
  Alcotest.(check bool) "sub-ideal at 32T" true (t 1 /. t 32 < 32.0)

let test_perfmodel_small_flattens () =
  let m = Models.Registry.model (Models.Registry.find_exn "Plonsey") in
  let g = Codegen.Kernel.generate (Codegen.Config.mlir ~width:8) m in
  let t n =
    (Machine.Perfmodel.run_kernel g ~ncells:8192 ~steps:1000 ~nthreads:n)
      .Machine.Perfmodel.seconds
  in
  (* tiny kernels stop scaling: 32 threads no better than 2x over 4 threads *)
  Alcotest.(check bool) "small model flattens" true (t 4 /. t 32 < 2.0)

let test_perfmodel_width_ordering () =
  let m = Models.Registry.model (Models.Registry.find_exn "Courtemanche") in
  let t w =
    let g = Codegen.Kernel.generate (Codegen.Config.mlir ~width:w) m in
    (Machine.Perfmodel.run_kernel g ~ncells:8192 ~steps:1000 ~nthreads:1)
      .Machine.Perfmodel.seconds
  in
  Alcotest.(check bool) "avx512 < avx2 < sse" true (t 8 < t 4 && t 4 < t 2)

let test_ert_ceilings () =
  let c = Machine.Ert.ceilings Machine.Arch.avx512 ~nthreads:32 in
  (* the paper's measured platform: 760 GF/s, 199 GB/s DRAM, ~1052 GB/s L1 *)
  Alcotest.(check bool) "peak ~760" true
    (Float.abs (c.Machine.Ert.peak_gflops -. 760.0) < 10.0);
  Helpers.fcheck "dram bw" 199.0 c.Machine.Ert.dram_bw;
  Alcotest.(check bool) "l1 ~1052" true
    (Float.abs (c.Machine.Ert.l1_bw -. 1052.0) < 10.0)

let test_ert_sweep_plateaus () =
  let c = Machine.Ert.ceilings Machine.Arch.avx512 ~nthreads:32 in
  let pts = Machine.Ert.sweep Machine.Arch.avx512 ~nthreads:32 in
  (* low OI points sit on the bandwidth line, high OI ones on the peak *)
  let lo_oi, lo_gf = List.hd pts in
  Helpers.check_close ~tol:1e-6 "bandwidth-bound end"
    (lo_oi *. c.Machine.Ert.dram_bw) lo_gf;
  let _, hi_gf = List.nth pts (List.length pts - 1) in
  Helpers.check_close ~tol:1e-6 "compute-bound end" c.Machine.Ert.peak_gflops hi_gf

let test_roofline_helpers () =
  let c = { Perf.Roofline.peak_gflops = 760.0; dram_bw = 199.0; l1_bw = 1052.0 } in
  Helpers.check_close ~tol:1e-9 "ridge" (760.0 /. 199.0) (Perf.Roofline.ridge c);
  Alcotest.(check bool) "left of ridge is memory bound" true
    (Perf.Roofline.memory_bound c ~oi:1.0);
  Alcotest.(check bool) "right of ridge is compute bound" false
    (Perf.Roofline.memory_bound c ~oi:10.0);
  Helpers.check_close ~tol:1e-9 "attainable on slope" 199.0
    (Perf.Roofline.attainable c ~oi:1.0);
  Helpers.check_close ~tol:1e-9 "attainable at peak" 760.0
    (Perf.Roofline.attainable c ~oi:100.0)

(* -- statistics ------------------------------------------------------------ *)

let test_stats () =
  Helpers.check_close ~tol:1e-12 "geomean" 2.0
    (Perf.Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Helpers.fcheck "trimmed mean drops extrema" 3.0
    (Perf.Stats.trimmed_mean [ 100.0; 2.0; 4.0; 3.0; 0.001 ]);
  Helpers.fcheck "mean" 2.5 (Perf.Stats.mean [ 1.0; 4.0; 2.0; 3.0 ]);
  let mn, mx = Perf.Stats.min_max [ 3.0; -1.0; 2.0 ] in
  Helpers.fcheck "min" (-1.0) mn;
  Helpers.fcheck "max" 3.0 mx

let test_stats_quantiles () =
  Helpers.fcheck "median odd" 2.0 (Perf.Stats.median [ 3.0; 1.0; 2.0 ]);
  Helpers.fcheck "median even" 2.5 (Perf.Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  Helpers.fcheck "median singleton" 7.0 (Perf.Stats.median [ 7.0 ]);
  Helpers.fcheck "iqr" 1.5 (Perf.Stats.iqr [ 1.0; 2.0; 3.0; 4.0 ]);
  Helpers.fcheck "iqr constant" 0.0 (Perf.Stats.iqr [ 5.0; 5.0; 5.0 ]);
  Helpers.fcheck "quantile 0 is min" 1.0
    (Perf.Stats.quantile [ 3.0; 1.0; 2.0 ] 0.0);
  Helpers.fcheck "quantile 1 is max" 3.0
    (Perf.Stats.quantile [ 3.0; 1.0; 2.0 ] 1.0);
  (match Perf.Stats.quantile [] 0.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "quantile of empty must raise");
  (match Perf.Stats.quantile [ 1.0 ] 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "quantile outside [0,1] must raise");
  match Perf.Stats.trimmed_mean [ 1.0; 2.0 ] with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "raise names the sample count" true
        (Helpers.contains msg "2")
  | _ -> Alcotest.fail "trimmed_mean must raise on < 3 samples"

let quantiles_bounded =
  Helpers.qtest ~count:200 "median and iqr stay within range"
    QCheck.(
      list_of_size (Gen.int_range 1 20) (QCheck.float_range (-100.0) 100.0))
    (fun xs ->
      let mn, mx = Perf.Stats.min_max xs in
      let med = Perf.Stats.median xs and iqr = Perf.Stats.iqr xs in
      med >= mn && med <= mx && iqr >= 0.0 && iqr <= mx -. mn)

let geomean_scale_invariant =
  Helpers.qtest ~count:200 "geomean is multiplicative"
    QCheck.(
      pair
        (QCheck.list_of_size (QCheck.Gen.int_range 1 10)
           (QCheck.float_range 0.1 10.0))
        (QCheck.float_range 0.1 10.0))
    (fun (xs, k) ->
      let g1 = Perf.Stats.geomean (List.map (fun x -> x *. k) xs) in
      let g2 = k *. Perf.Stats.geomean xs in
      Helpers.close ~tol:1e-9 g1 g2)

let suite =
  [
    Alcotest.test_case "kcost exact counts" `Quick test_kcost_counts;
    Alcotest.test_case "vector amortizes cycles" `Quick
      test_kcost_vector_amortizes;
    Alcotest.test_case "thread scaling shape" `Quick test_perfmodel_thread_scaling;
    Alcotest.test_case "small models flatten" `Quick test_perfmodel_small_flattens;
    Alcotest.test_case "width ordering" `Quick test_perfmodel_width_ordering;
    Alcotest.test_case "ert ceilings match paper" `Quick test_ert_ceilings;
    Alcotest.test_case "ert sweep plateaus" `Quick test_ert_sweep_plateaus;
    Alcotest.test_case "roofline helpers" `Quick test_roofline_helpers;
    Alcotest.test_case "statistics" `Quick test_stats;
    Alcotest.test_case "quantiles" `Quick test_stats_quantiles;
    geomean_scale_invariant;
    quantiles_bounded;
  ]
