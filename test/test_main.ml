let () =
  Alcotest.run "limpetmlir"
    [
      ("frontend", Test_frontend.suite);
      ("analysis", Test_analysis.suite);
      ("dataflow", Test_dataflow.suite);
      ("race", Test_race.suite);
      ("mmt", Test_mmt.suite);
      ("ir", Test_ir.suite);
      ("engine", Test_engine.suite);
    ("fused", Test_fused.suite);
      ("batched", Test_batched.suite);
      ("passes", Test_passes.suite);
      ("specialize", Test_specialize.suite);
      ("integrators", Test_integrators.suite);
      ("runtime", Test_runtime.suite);
      ("solver", Test_solver.suite);
      ("tissue", Test_tissue.suite);
      ("codegen", Test_codegen.suite);
      ("driver", Test_driver.suite);
      ("models", Test_models.suite);
      ("machine", Test_machine.suite);
      ("obs", Test_obs.suite);
      ("recorder", Test_recorder.suite);
      ("health", Test_health.suite);
      ("transval", Test_transval.suite);
      ("native", Test_native.suite);
    ]
