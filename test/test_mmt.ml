(* MMT (Myokit) importer tests: translation, name flattening, aliases,
   power/if/piecewise desugaring, end-to-end simulation of an imported
   model. *)

let mmt_src =
  {|
[[model]]
name: mmt_hh
# initial conditions
membrane.V = -65.0
gates.m = 0.0529
gates.h = 0.5961
gates.n = 0.3177

[membrane]
dot(V) = -(i_ion) / Cm
    in [mV]
Cm = 1 [uF/cm^2]
i_ion = ina.INa + ik.IK + il.IL

[gates]
use membrane.V as V
am = if(abs(V + 40) < 1e-6, 1.0, 0.1 * (V + 40) / (1 - exp(-(V + 40) / 10)))
bm = 4 * exp(-(V + 65) / 18)
dot(m) = am * (1 - m) - bm * m
ah = 0.07 * exp(-(V + 65) / 20)
bh = 1 / (1 + exp(-(V + 35) / 10))
dot(h) = ah * (1 - h) - bh * h
an = if(abs(V + 55) < 1e-6, 0.1, 0.01 * (V + 55) / (1 - exp(-(V + 55) / 10)))
bn = 0.125 * exp(-(V + 65) / 80)
dot(n) = an * (1 - n) - bn * n

[ina]
use membrane.V as V
gNa = 120 [mS/cm^2]
ENa = 50 [mV]
INa = gNa * gates.m^3 * gates.h * (V - ENa)

[ik]
use membrane.V as V
gK = 36
EK = -77
IK = gK * gates.n^4 * (V - EK)

[il]
use membrane.V as V
IL = 0.3 * (V - (-54.387))
|}

let test_parse_structure () =
  let t = Easyml.Mmt.parse mmt_src in
  Alcotest.(check string) "model name" "mmt_hh" t.name;
  Alcotest.(check int) "initial conditions" 4 (List.length t.inits);
  Alcotest.(check (float 0.0)) "V init" (-65.0)
    (List.assoc "membrane__V" t.inits);
  (* 4 dot equations among the definitions *)
  let dots = List.filter (fun (d : Easyml.Mmt.definition) -> d.d_dot) t.defs in
  Alcotest.(check int) "state equations" 4 (List.length dots)

let test_easyml_rendering () =
  let t = Easyml.Mmt.parse mmt_src in
  let src = Easyml.Mmt.to_easyml ~vm:"membrane.V" ~iion:"membrane.i_ion" t in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (frag ^ " present") true (Helpers.contains src frag))
    [
      "Vm; .external()";
      "Iion; .external()";
      "diff_gates__m";
      "gates__m; .method(rush_larsen);";
      "pow(gates__m, 3.0)";
      "Iion = membrane__i_ion;";
      "Vm_init = -65";
    ];
  (* the Vm dot equation must be dropped *)
  Alcotest.(check bool) "no diff_Vm" false (Helpers.contains src "diff_membrane__V")

let test_import_analyzes () =
  let m = Easyml.Mmt.import ~vm:"membrane.V" ~iion:"membrane.i_ion" mmt_src in
  Alcotest.(check int) "three states" 3 (List.length m.states);
  Alcotest.(check (list string)) "no warnings" []
    (List.map (Easyml.Diag.to_string ~file:m.name) m.warnings);
  (* all gates are Rush-Larsen *)
  List.iter
    (fun (sv : Easyml.Model.state_var) ->
      Alcotest.(check string) (sv.sv_name ^ " method") "rush_larsen"
        (Easyml.Model.integ_name sv.sv_method))
    m.states

let test_imported_matches_native () =
  (* the imported HH must reproduce the native HodgkinHuxley trajectory
     (identical equations, up to the E_L literal spelled inline) *)
  let imported = Easyml.Mmt.import ~vm:"membrane.V" ~iion:"membrane.i_ion" mmt_src in
  let native = Models.Registry.model (Models.Registry.find_exn "HodgkinHuxley") in
  let run m =
    let g = Codegen.Kernel.generate (Codegen.Config.mlir ~width:4) m in
    let d = Sim.Driver.create g ~ncells:4 ~dt:0.01 in
    let stim = Sim.Stim.make ~amplitude:15.0 ~start:0.5 ~duration:0.5 () in
    for _ = 1 to 800 do
      Sim.Driver.step ~stim d
    done;
    Sim.Driver.vm d 0
  in
  let vi = run imported and vn = run native in
  Helpers.check_close ~tol:1e-3 "imported HH == native HH (Vm after 8 ms)" vn vi

let test_power_precedence () =
  (* a * b^c must parse as a * (b^c); -x^2 as -(x^2) *)
  let t =
    Easyml.Mmt.parse
      {|
[[model]]
name: prec
c.y = 1.0
[c]
p = 2 * y^3
q = -y^2
dot(y) = 0
|}
  in
  let find v =
    (List.find (fun (d : Easyml.Mmt.definition) -> d.d_var = v) t.defs).d_rhs
  in
  Helpers.fcheck "2 * y^3" 16.0
    (Easyml.Eval.eval_alist [ ("c__y", 2.0) ] (find "c__p"));
  Helpers.fcheck "-y^2" (-4.0)
    (Easyml.Eval.eval_alist [ ("c__y", 2.0) ] (find "c__q"))

let test_piecewise () =
  let t =
    Easyml.Mmt.parse
      {|
[[model]]
name: pw
c.y = 0.5
[c]
v = piecewise(y < 0, 1.0, y > 1, 2.0, 3.0)
dot(y) = 0
|}
  in
  let e =
    (List.find (fun (d : Easyml.Mmt.definition) -> d.d_var = "c__v") t.defs).d_rhs
  in
  let at y = Easyml.Eval.eval_alist [ ("c__y", y) ] e in
  Helpers.fcheck "first branch" 1.0 (at (-1.0));
  Helpers.fcheck "second branch" 2.0 (at 2.0);
  Helpers.fcheck "default" 3.0 (at 0.5)

let test_errors () =
  let bad src =
    match Easyml.Mmt.parse src with
    | exception Easyml.Mmt.Error _ -> ()
    | _ -> Alcotest.failf "expected MMT error for %S" src
  in
  bad "x = 1";
  (* content before any section *)
  bad "[[model]]\nfoo.bar = not_a_number";
  bad "[[model]]\n[c]\nuse broken syntax here"

let suite =
  [
    Alcotest.test_case "parse structure" `Quick test_parse_structure;
    Alcotest.test_case "easyml rendering" `Quick test_easyml_rendering;
    Alcotest.test_case "import analyzes" `Quick test_import_analyzes;
    Alcotest.test_case "imported HH == native HH" `Quick
      test_imported_matches_native;
    Alcotest.test_case "power precedence" `Quick test_power_precedence;
    Alcotest.test_case "piecewise" `Quick test_piecewise;
    Alcotest.test_case "mmt errors" `Quick test_errors;
  ]
