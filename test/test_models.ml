(* Model-suite tests: the 43-model catalogue analyzes, compiles, verifies
   and simulates stably; scalar and vector kernels agree exactly. *)

module K = Codegen.Kernel
module C = Codegen.Config

let test_counts () =
  Alcotest.(check int) "43 models" 43 (List.length Models.Registry.all);
  let counts = Models.Registry.class_counts () in
  Alcotest.(check int) "8 small" 8 (List.assoc Models.Model_def.Small counts);
  Alcotest.(check int) "22 medium" 22 (List.assoc Models.Model_def.Medium counts);
  Alcotest.(check int) "13 large" 13 (List.assoc Models.Model_def.Large counts)

let test_unique_names () =
  let names = Models.Registry.names () in
  Alcotest.(check int) "names unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_paper_models_present () =
  (* the models the paper calls out by name in figures and text *)
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true
        (Option.is_some (Models.Registry.find n)))
    [
      "ISAC_Hu"; "KChCheng"; "Plonsey"; "StressLumens"; "Stress_Niederer";
      "DrouhardRoberge"; "HodgkinHuxley"; "Maleckar"; "Courtemanche"; "OHara";
      "WangSobie"; "GrandiPanditVoigt"; "MitchellSchaeffer"; "Pathmanathan";
    ]

let test_all_analyze () =
  List.iter
    (fun (e : Models.Model_def.entry) ->
      let m = Models.Registry.model e in
      Alcotest.(check bool) (e.name ^ " has states") true (m.states <> []);
      Alcotest.(check bool)
        (e.name ^ " has Vm and Iion externals")
        true
        (Option.is_some (Easyml.Model.find_ext m "Vm")
        && Option.is_some (Easyml.Model.find_ext m "Iion"));
      (* warnings would signal silently-degraded methods; info-level
         notes (e.g. unused-param) are fine *)
      Alcotest.(check (list string))
        (e.name ^ " warnings") []
        (List.filter_map
           (fun (d : Easyml.Diag.t) ->
             if d.Easyml.Diag.sev = Easyml.Diag.Info then None
             else Some (Easyml.Diag.to_string ~file:e.name d))
           m.warnings))
    Models.Registry.all

let test_all_generate_and_verify () =
  List.iter
    (fun (e : Models.Model_def.entry) ->
      let m = Models.Registry.model e in
      List.iter
        (fun cfg ->
          let g = K.generate cfg m in
          match Ir.Verifier.verify_module g.K.modl with
          | [] -> ()
          | errs ->
              Alcotest.failf "%s (%s): %s" e.name (C.describe cfg)
                (Ir.Verifier.errors_to_string errs))
        [ C.baseline; C.mlir ~width:8 ])
    Models.Registry.all

let test_all_simulate_stably () =
  (* 150 steps with stimulus: finite states, exact scalar/vector match *)
  List.iter
    (fun (e : Models.Model_def.entry) ->
      let m = Models.Registry.model e in
      let gs = K.generate C.baseline m in
      let gv = K.generate (C.mlir ~width:8) m in
      let ds = Sim.Driver.create gs ~ncells:8 ~dt:0.01 in
      let dv = Sim.Driver.create gv ~ncells:8 ~dt:0.01 in
      let stim = Sim.Stim.make ~amplitude:40.0 ~start:0.5 ~duration:1.0 () in
      for _ = 1 to 150 do
        Sim.Driver.step ~stim ds;
        Sim.Driver.step ~stim dv
      done;
      List.iter2
        (fun (n, a) (_, b) ->
          if not (Float.is_finite a) then
            Alcotest.failf "%s: %s is not finite" e.name n;
          if not (Helpers.same_float a b) then
            Alcotest.failf "%s: scalar/vector mismatch on %s: %.17g vs %.17g"
              e.name n a b)
        (Sim.Driver.snapshot ds 3) (Sim.Driver.snapshot dv 3))
    Models.Registry.all

let test_method_coverage () =
  (* the suite exercises every integration method the paper implements *)
  let used = Hashtbl.create 8 in
  List.iter
    (fun (e : Models.Model_def.entry) ->
      let m = Models.Registry.model e in
      List.iter
        (fun (sv : Easyml.Model.state_var) ->
          Hashtbl.replace used (Easyml.Model.integ_name sv.sv_method) ())
        m.states)
    Models.Registry.all;
  List.iter
    (fun meth ->
      Alcotest.(check bool) (meth ^ " used by some model") true
        (Hashtbl.mem used meth))
    [ "fe"; "rk2"; "rk4"; "rush_larsen"; "sundnes"; "markov_be" ]

let test_lut_usage () =
  (* every medium/large model tabulates Vm; ISAC_Hu famously does not *)
  let has_lut e =
    (Models.Registry.model e).Easyml.Model.luts <> []
  in
  Alcotest.(check bool) "ISAC_Hu has no LUT" false
    (has_lut (Models.Registry.find_exn "ISAC_Hu"));
  List.iter
    (fun (e : Models.Model_def.entry) ->
      if e.cls <> Models.Model_def.Small then
        Alcotest.(check bool) (e.name ^ " uses a LUT") true (has_lut e))
    Models.Registry.all

let test_state_counts_by_class () =
  (* large models must be structurally heavier than small ones *)
  let avg cls =
    let es = Models.Registry.by_class cls in
    float_of_int
      (List.fold_left
         (fun n e -> n + Easyml.Model.n_states (Models.Registry.model e))
         0 es)
    /. float_of_int (List.length es)
  in
  let s = avg Models.Model_def.Small
  and m = avg Models.Model_def.Medium
  and l = avg Models.Model_def.Large in
  Alcotest.(check bool)
    (Printf.sprintf "state counts grow with class (%.1f < %.1f < %.1f)" s m l)
    true
    (s < m && m < l && l > 18.0)

let test_faithful_hh_rest () =
  (* the faithful Hodgkin-Huxley model holds its resting potential *)
  let m = Models.Registry.model (Models.Registry.find_exn "HodgkinHuxley") in
  let g = K.generate C.baseline m in
  let d = Sim.Driver.create g ~ncells:1 ~dt:0.01 in
  for _ = 1 to 2000 do
    Sim.Driver.step d (* no stimulus *)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "rest stays near -65 mV (got %.2f)" (Sim.Driver.vm d 0))
    true
    (Float.abs (Sim.Driver.vm d 0 +. 65.0) < 3.0)

let test_faithful_lr91_upstroke () =
  (* stimulating LuoRudy91 fires an action potential with realistic
     overshoot *)
  let m = Models.Registry.model (Models.Registry.find_exn "LuoRudy91") in
  let g = K.generate (C.mlir ~width:4) m in
  let d = Sim.Driver.create g ~ncells:1 ~dt:0.01 in
  let stim = Sim.Stim.make ~amplitude:80.0 ~start:1.0 ~duration:1.0 () in
  let peak = ref neg_infinity in
  for _ = 1 to 5000 do
    Sim.Driver.step ~stim d;
    peak := Float.max !peak (Sim.Driver.vm d 0)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "AP overshoot between 10 and 80 mV (got %.1f)" !peak)
    true
    (!peak > 10.0 && !peak < 80.0)

let suite =
  [
    Alcotest.test_case "class counts 8/22/13" `Quick test_counts;
    Alcotest.test_case "unique names" `Quick test_unique_names;
    Alcotest.test_case "paper-named models present" `Quick
      test_paper_models_present;
    Alcotest.test_case "all 43 analyze cleanly" `Quick test_all_analyze;
    Alcotest.test_case "all 43 generate + verify" `Slow
      test_all_generate_and_verify;
    Alcotest.test_case "all 43 simulate stably, scalar == vector" `Slow
      test_all_simulate_stably;
    Alcotest.test_case "integration-method coverage" `Quick test_method_coverage;
    Alcotest.test_case "LUT usage" `Quick test_lut_usage;
    Alcotest.test_case "state counts grow with class" `Quick
      test_state_counts_by_class;
    Alcotest.test_case "HodgkinHuxley resting potential" `Slow
      test_faithful_hh_rest;
    Alcotest.test_case "LuoRudy91 action potential" `Slow
      test_faithful_lr91_upstroke;
  ]
