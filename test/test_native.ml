(* Native (JIT-compiled C) engine tests: trajectory differential against
   the batched engine on the full model catalogue, qcheck differential of
   the C emitter vs. the closure engine on random lowered loops,
   parallel == sequential, artifact-cache accounting, and the failure
   paths (no toolchain, failing compiler, malformed C) — all of which
   must surface structured diagnostics or degrade, never crash.

   Every test that needs a C compiler skips cleanly when none is
   available (the suite still reports the availability status). *)

open Exec
module C = Codegen.Config
module B = Ir.Builder

let stim = Sim.Stim.make ~amplitude:40.0 ~start:0.5 ~duration:1.0 ()
let configs = [ ("scalar", C.baseline); ("vector", C.mlir ~width:4) ]
let ncells = 13

let have_cc () = Native.available ()

let skip_without_cc () =
  if not (have_cc ()) then
    Alcotest.skip ()

(* Documented ULP bound for the native-vs-OCaml differential.  Every libm
   call site in the emitted C routes to the same glibc entry point the
   OCaml engines call (OCaml's Float.exp etc. are direct externs), FMA
   contraction is disabled (-ffp-contract=off) and float constants are
   emitted as exact hex literals, so trajectories are expected bitwise
   identical (ULP distance 0) on any box with one libm.  The bound of 2
   exists only to absorb cross-toolchain constant-rounding differences;
   a regression past it is a real emitter bug. *)
let native_ulp_bound = 2L

let ulp_diff (a : float) (b : float) : int64 =
  if Float.is_nan a && Float.is_nan b then 0L
  else if Float.is_nan a || Float.is_nan b then Int64.max_int
  else
    (* map to a monotone integer line so adjacent floats differ by 1 *)
    let line x =
      let bits = Int64.bits_of_float x in
      if Int64.compare bits 0L < 0 then Int64.sub Int64.min_int bits else bits
    in
    Int64.abs (Int64.sub (line a) (line b))

let check_snapshots_ulp ~ctx a b =
  List.iter2
    (fun (n, x) (_, y) ->
      if not (Float.is_finite x) then Alcotest.failf "%s: %s not finite" ctx n;
      let d = ulp_diff x y in
      if Int64.compare d native_ulp_bound > 0 then
        Alcotest.failf "%s: %s differs by %Ld ULP: %.17g vs %.17g" ctx n d x y)
    a b

(* -- 43-model trajectory differential ----------------------------------- *)

(* native == batched within the documented ULP bound (bitwise in practice)
   on every model, scalar and vector, over a stimulated 50-step
   trajectory. *)
let test_all_models_native_vs_batched () =
  skip_without_cc ();
  List.iter
    (fun (e : Models.Model_def.entry) ->
      List.iter
        (fun (cname, cfg) ->
          let g =
            Codegen.Cache.generate_named cfg ~name:e.name (fun () ->
                Models.Registry.model e)
          in
          let run engine =
            let d = Sim.Driver.create ~engine g ~ncells ~dt:0.01 in
            for _ = 1 to 50 do
              Sim.Driver.step ~stim d
            done;
            (d, List.map (fun cell -> (cell, Sim.Driver.snapshot d cell)) [ 0; 6; 12 ])
          in
          let dn, native = run Sim.Driver.Native in
          if dn.Sim.Driver.engine <> Sim.Driver.Native then
            Alcotest.failf "%s/%s: native driver fell back unexpectedly"
              e.name cname;
          let _, batched = run Sim.Driver.Batched in
          List.iter2
            (fun (cell, a) (_, b) ->
              check_snapshots_ulp
                ~ctx:(Printf.sprintf "%s/%s cell %d" e.name cname cell)
                a b)
            native batched)
        configs)
    Models.Registry.all

(* The cubic-spline LUT path exercises the inlined Catmull-Rom helpers. *)
let test_cubic_lut_native () =
  skip_without_cc ();
  List.iter
    (fun name ->
      let cfg = { (C.mlir ~width:4) with C.lut_spline = true } in
      let e = Models.Registry.find_exn name in
      let g =
        Codegen.Cache.generate_named cfg ~name:e.Models.Model_def.name
          (fun () -> Models.Registry.model e)
      in
      let run engine =
        let d = Sim.Driver.create ~engine g ~ncells ~dt:0.01 in
        for _ = 1 to 50 do
          Sim.Driver.step ~stim d
        done;
        Sim.Driver.snapshot d 6
      in
      check_snapshots_ulp
        ~ctx:(name ^ " cubic native/batched")
        (run Sim.Driver.Native) (run Sim.Driver.Batched))
    [ "MitchellSchaeffer"; "LuoRudy91"; "TenTusscher" ]

(* Domain-parallel native stepping is bitwise identical to sequential:
   per-thread bindings marshal into private buffers and chunks are
   disjoint. *)
let test_parallel_identical () =
  skip_without_cc ();
  List.iter
    (fun name ->
      let e = Models.Registry.find_exn name in
      let g =
        Codegen.Cache.generate_named (C.mlir ~width:4)
          ~name:e.Models.Model_def.name (fun () -> Models.Registry.model e)
      in
      let mk () =
        Sim.Driver.create ~engine:Sim.Driver.Native g ~ncells:17 ~dt:0.01
      in
      let ds = mk () and dp = mk () in
      for _ = 1 to 50 do
        Sim.Driver.step ~stim ds;
        Sim.Driver.step ~nthreads:4 ~stim dp
      done;
      for cell = 0 to 16 do
        List.iter2
          (fun (n, x) (_, y) ->
            if not (Helpers.same_float x y) then
              Alcotest.failf "%s parallel cell %d: %s: %.17g vs %.17g" name
                cell n x y)
          (Sim.Driver.snapshot ds cell)
          (Sim.Driver.snapshot dp cell)
      done)
    [ "MitchellSchaeffer"; "LuoRudy91" ]

(* -- qcheck: C emitter vs. closure engine on random lowered loops ------- *)

let lower_loop ~(w : int) (e : Easyml.Ast.expr) : Ir.Func.modl =
  let m = Ir.Func.create_module "nat_loop" in
  let c = B.create_ctx () in
  Ir.Func.add_func m
    (B.func c ~name:"f"
       ~params:[ Ir.Ty.Memref; Ir.Ty.Memref; Ir.Ty.Memref; Ir.Ty.I64 ]
       ~results:[]
       (fun b args ->
         let in1 = List.nth args 0
         and in2 = List.nth args 1
         and out = List.nth args 2
         and n = List.nth args 3 in
         ignore
           (B.for_ b ~parallel:true ~lb:(B.consti b 0) ~ub:n
              ~step:(B.consti b w) ~inits:[]
              (fun ~iv ~iters:_ ->
                let x, y =
                  if w = 1 then
                    (B.load b ~mem:in1 ~idx:iv, B.load b ~mem:in2 ~idx:iv)
                  else
                    ( B.vec_load b ~width:w ~mem:in1 ~idx:iv,
                      B.vec_load b ~width:w ~mem:in2 ~idx:iv )
                in
                let env =
                  Codegen.Lower.make_env ~b ~width:w [ ("x", x); ("y", y) ]
                in
                let r = Codegen.Lower.lower_num env e in
                if w = 1 then B.store b r ~mem:out ~idx:iv
                else B.vec_store b ~vec:r ~mem:out ~idx:iv;
                []));
         B.ret b []));
  m

let stem_counter = ref 0

let run_native (m : Ir.Func.modl) ~(n : int) (in1 : floatarray)
    (in2 : floatarray) : floatarray =
  let tc = Option.get (Native.toolchain ()) in
  let src = Codegen.C_backend.emit_module m in
  incr stem_counter;
  let lib, _ms =
    Native.compile tc ~stem:(Printf.sprintf "t_loop_%d" !stem_counter) ~src
  in
  let f =
    Native.bind lib ~symbol:(Codegen.C_backend.symbol "f")
      ~params:[ Ir.Ty.Memref; Ir.Ty.Memref; Ir.Ty.Memref; Ir.Ty.I64 ]
  in
  let out = Float.Array.make n 0.0 in
  ignore (f [| Rt.M in1; Rt.M in2; Rt.M out; Rt.I n |]);
  out

let run_closure (m : Ir.Func.modl) ~(n : int) (in1 : floatarray)
    (in2 : floatarray) : floatarray =
  let out = Float.Array.make n 0.0 in
  ignore (Engine.run m "f" [| Rt.M in1; Rt.M in2; Rt.M out; Rt.I n |]);
  out

let native_matches_closure_on_loops ~(w : int) name =
  (* each case invokes the C compiler once; keep the count moderate *)
  Helpers.qtest ~count:25 name
    (Helpers.arbitrary_expr [ "x"; "y" ])
    (fun e ->
      (* vacuously true without a toolchain (the availability test below
         reports the status) *)
      have_cc ()
      = false
      ||
      (* raw lowered IR, deliberately unoptimized: constant-argument
         transcendentals survive to the emitter, exercising its volatile
         guard against the C compiler's own (correctly-rounded MPFR)
         compile-time libm *)
      let m = lower_loop ~w e in
      Ir.Verifier.verify_module_exn m;
      let n = 12 in
      let in1 = Float.Array.init n (fun i -> Float.sin (float_of_int (i + 1)))
      and in2 = Float.Array.init n (fun i -> Float.cos (float_of_int i)) in
      let want = run_closure m ~n in1 in2 in
      let got = run_native m ~n in1 in2 in
      let ok = ref true in
      for i = 0 to n - 1 do
        if
          not
            (Helpers.same_float (Float.Array.get got i)
               (Float.Array.get want i))
        then ok := false
      done;
      !ok)

(* -- artifact cache ----------------------------------------------------- *)

let test_cache_accounting () =
  skip_without_cc ();
  let e = Models.Registry.find_exn "BeelerReuter" in
  let g =
    Codegen.Cache.generate_named (C.mlir ~width:4)
      ~name:e.Models.Model_def.name (fun () -> Models.Registry.model e)
  in
  Codegen.Cache.reset_stats ();
  let mk () =
    Sim.Driver.create ~engine:Sim.Driver.Native g ~ncells:7 ~dt:0.02
  in
  let d1 = mk () in
  Alcotest.(check bool) "first driver runs native" true
    (d1.Sim.Driver.engine = Sim.Driver.Native);
  let s1 = Codegen.Cache.stats () in
  Alcotest.(check bool) "first driver misses or hits a prior artifact" true
    (s1.Codegen.Cache.native_misses + s1.Codegen.Cache.native_hits >= 1);
  let d2 = mk () in
  ignore d2;
  let s2 = Codegen.Cache.stats () in
  Alcotest.(check bool) "second identical driver hits" true
    (s2.Codegen.Cache.native_hits > s1.Codegen.Cache.native_hits);
  Alcotest.(check int) "no recompile on the hit" s1.Codegen.Cache.native_misses
    s2.Codegen.Cache.native_misses;
  if s1.Codegen.Cache.native_misses > 0 then
    Alcotest.(check bool) "compiler time accounted" true
      (s2.Codegen.Cache.cc_ms > 0.0);
  Alcotest.(check bool) "describe_stats mentions native" true
    (Helpers.contains (Codegen.Cache.describe_stats ()) "native")

(* A second driver at a different cell count specializes to different
   run constants — different printed IR, so a fresh artifact, never a
   stale hit. *)
let test_cache_distinguishes_bindings () =
  skip_without_cc ();
  let e = Models.Registry.find_exn "BeelerReuter" in
  let g =
    Codegen.Cache.generate_named (C.mlir ~width:4)
      ~name:e.Models.Model_def.name (fun () -> Models.Registry.model e)
  in
  Codegen.Cache.reset_stats ();
  let d1 =
    Sim.Driver.create ~engine:Sim.Driver.Native g ~ncells:64 ~dt:0.005
  in
  let s1 = Codegen.Cache.stats () in
  let d2 =
    Sim.Driver.create ~engine:Sim.Driver.Native g ~ncells:96 ~dt:0.005
  in
  let s2 = Codegen.Cache.stats () in
  ignore (d1, d2);
  Alcotest.(check bool) "different ncells_pad compiles a fresh artifact" true
    (s2.Codegen.Cache.native_misses > s1.Codegen.Cache.native_misses)

(* -- failure paths ------------------------------------------------------ *)

let test_fallback_without_toolchain () =
  Native.with_toolchain None (fun () ->
      Alcotest.(check bool) "available() reports false" false
        (Native.available ());
      let e = Models.Registry.find_exn "MitchellSchaeffer" in
      let g =
        Codegen.Cache.generate_named (C.mlir ~width:4)
          ~name:e.Models.Model_def.name (fun () -> Models.Registry.model e)
      in
      (* no exception; the driver silently (minus one stderr warning)
         runs on the batched engine *)
      let d =
        Sim.Driver.create ~engine:Sim.Driver.Native g ~ncells:9 ~dt:0.01
      in
      Alcotest.(check bool) "fell back to batched" true
        (d.Sim.Driver.engine = Sim.Driver.Batched);
      Alcotest.(check bool) "no native lookup kept" true
        (d.Sim.Driver.native = None);
      for _ = 1 to 10 do
        Sim.Driver.step ~stim d
      done;
      Alcotest.(check bool) "fallback driver steps fine" true
        (Float.is_finite (Sim.Driver.vm d 0)))

let test_failing_compiler_diagnostic () =
  if not (Sys.file_exists "/bin/false") then Alcotest.skip ();
  Native.with_toolchain
    (Some { Native.cc = "/bin/false"; id = "/bin/false (test)" })
    (fun () ->
      let e = Models.Registry.find_exn "MitchellSchaeffer" in
      let g =
        Codegen.Cache.generate_named (C.mlir ~width:4)
          ~name:e.Models.Model_def.name (fun () -> Models.Registry.model e)
      in
      (match Codegen.Cache.native g with
      | Ok _ -> Alcotest.fail "a failing compiler produced an artifact"
      | Error diag ->
          Alcotest.(check string) "structured code" "cc-failed"
            diag.Easyml.Diag.code);
      (* and the driver still degrades instead of raising *)
      let d =
        Sim.Driver.create ~engine:Sim.Driver.Native g ~ncells:9 ~dt:0.01
      in
      Alcotest.(check bool) "fell back to batched" true
        (d.Sim.Driver.engine = Sim.Driver.Batched))

let test_malformed_c_compile_error () =
  skip_without_cc ();
  let tc = Option.get (Native.toolchain ()) in
  match Native.compile tc ~stem:"t_malformed" ~src:"int main( {" with
  | _ -> Alcotest.fail "malformed C compiled"
  | exception Native.Compile_error { status; log; file; _ } ->
      Alcotest.(check bool) "non-zero status" true (status <> 0);
      Alcotest.(check bool) "stderr captured" true (String.length log > 0);
      Alcotest.(check bool) "source kept for post-mortem" true
        (Sys.file_exists file)

let test_unsupported_ir_diagnostic () =
  (* vector-typed function parameters have no C lowering: the emitter
     must refuse with Unsupported (which Cache.native turns into a
     structured diagnostic), not emit wrong code *)
  let m = Ir.Func.create_module "bad" in
  let c = B.create_ctx () in
  Ir.Func.add_func m
    (B.func c ~name:"f"
       ~params:[ Ir.Ty.Vec (4, Ir.Ty.F64) ]
       ~results:[] (fun b _args -> B.ret b []));
  match Codegen.C_backend.emit_module m with
  | _ -> Alcotest.fail "vector parameter emitted"
  | exception Codegen.C_backend.Unsupported msg ->
      Alcotest.(check bool) "message names the problem" true
        (Helpers.contains msg "vector")

let test_availability_report () =
  (* not an assertion about the box — just surface the probe result in
     the test log so CI artifacts show which path ran *)
  (match Native.toolchain () with
  | Some tc -> Printf.printf "native toolchain: %s\n%!" tc.Native.id
  | None -> Printf.printf "native toolchain: none (native tests skipped)\n%!");
  ()

let suite =
  [
    Alcotest.test_case "toolchain availability" `Quick test_availability_report;
    Alcotest.test_case "all 43: native vs batched within ULP bound" `Slow
      test_all_models_native_vs_batched;
    Alcotest.test_case "cubic LUT inline helpers" `Quick test_cubic_lut_native;
    Alcotest.test_case "parallel native == sequential" `Quick
      test_parallel_identical;
    native_matches_closure_on_loops ~w:1
      "native == closure on random scalar loops";
    native_matches_closure_on_loops ~w:4
      "native == closure on random vector loops";
    Alcotest.test_case "artifact cache hits and accounting" `Quick
      test_cache_accounting;
    Alcotest.test_case "binding env distinguishes artifacts" `Quick
      test_cache_distinguishes_bindings;
    Alcotest.test_case "no toolchain: driver degrades to batched" `Quick
      test_fallback_without_toolchain;
    Alcotest.test_case "failing compiler: structured diagnostic" `Quick
      test_failing_compiler_diagnostic;
    Alcotest.test_case "malformed C: Compile_error with log" `Quick
      test_malformed_c_compile_error;
    Alcotest.test_case "unsupported IR: emitter refuses" `Quick
      test_unsupported_ir_diagnostic;
  ]
