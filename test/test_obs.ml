(* Observability tests: tracer semantics (disabled no-op, balancing,
   counters), the minimal JSON parser, Chrome-trace export round-trips,
   the traced-vs-untraced bitwise differential over the whole model
   catalogue, and the disabled-path overhead guard. *)

module T = Obs.Tracer
module E = Obs.Export
module J = Obs.Json
module C = Codegen.Config

(* Every test starts from a clean, disabled tracer; other suites in this
   binary never enable it, so cross-test interference is impossible. *)
let fresh () =
  T.disable ();
  T.reset ()

(* -- tracer ---------------------------------------------------------- *)

let test_disabled_records_nothing () =
  fresh ();
  Alcotest.(check bool) "disabled by default" false (T.enabled ());
  T.span_begin "a";
  T.with_span "b" (fun () -> T.count "c" 1.0);
  T.gauge "g" 2.0;
  T.span_end "a";
  let s = T.snapshot () in
  Alcotest.(check int) "no events" 0 (List.length s.T.events);
  Alcotest.(check int) "no counters" 0 (List.length s.T.counters);
  Alcotest.(check int) "no gauges" 0 (List.length s.T.gauges)

let test_spans_and_counters () =
  fresh ();
  T.enable ();
  T.with_span "outer" (fun () ->
      T.with_span "inner" (fun () -> T.count "n" 2.0);
      T.count "n" 3.0);
  T.gauge "depth" 1.0;
  T.gauge "depth" 4.0;
  T.disable ();
  let s = T.snapshot () in
  Alcotest.(check int) "two B/E pairs" 4 (List.length s.T.events);
  Alcotest.(check (list (pair string (float 1e-9))))
    "counter summed"
    [ ("n", 5.0) ]
    s.T.counters;
  Alcotest.(check (list (pair string (float 1e-9))))
    "gauge keeps the last write"
    [ ("depth", 4.0) ]
    s.T.gauges;
  (* with_span is exception-safe: the End is recorded on raise *)
  T.enable ();
  (match T.with_span "raises" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  T.disable ();
  let stats = E.summarize (T.snapshot ()) in
  Alcotest.(check bool) "raised span still closed" true
    (List.exists (fun ss -> ss.E.ss_name = "raises") stats)

let test_snapshot_balances () =
  fresh ();
  T.enable ();
  T.span_end "orphan end";
  T.span_begin "left open";
  T.with_span "complete" (fun () -> ());
  T.disable ();
  let s = T.snapshot () in
  (* the orphan End is dropped, the open Begin gets a synthetic End *)
  let begins =
    List.length (List.filter (fun e -> e.T.ev_kind = T.Begin) s.T.events)
  and ends =
    List.length (List.filter (fun e -> e.T.ev_kind = T.End) s.T.events)
  in
  Alcotest.(check int) "balanced" begins ends;
  Alcotest.(check int) "two spans" 2 begins;
  match E.validate_chrome (E.chrome s) with
  | Ok n -> Alcotest.(check int) "chrome validates" 4 n
  | Error e -> Alcotest.failf "chrome invalid: %s" e

let test_monotonic_timestamps () =
  fresh ();
  T.enable ();
  for _ = 1 to 500 do
    T.with_span "tick" (fun () -> ())
  done;
  T.disable ();
  let s = T.snapshot () in
  let rec mono = function
    | a :: (b :: _ as rest) ->
        if a.T.ev_ts > b.T.ev_ts then
          Alcotest.failf "timestamps went backwards: %g then %g" a.T.ev_ts
            b.T.ev_ts
        else mono rest
    | _ -> ()
  in
  mono s.T.events

let test_ring_overwrite_counts_dropped () =
  (* force a tiny logical load on the default ring: the ring only
     overwrites once more events than the capacity arrive, so spin well
     past it and check the drop accounting plus a still-valid export *)
  fresh ();
  T.enable ();
  for _ = 1 to 40_000 do
    T.with_span "spin" (fun () -> ())
  done;
  T.disable ();
  let s = T.snapshot () in
  Alcotest.(check bool) "snapshot nonempty" true (s.T.events <> []);
  Alcotest.(check bool) "overwritten events accounted as dropped" true
    (s.T.dropped > 0);
  match E.validate_chrome (E.chrome s) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "chrome invalid after heavy load: %s" e

(* -- JSON ------------------------------------------------------------ *)

let test_json_parse () =
  let ok text =
    match J.parse text with
    | Ok v -> v
    | Error e -> Alcotest.failf "parse %S: %s" text e
  in
  (match ok {|{"a": [1, -2.5e2, true, null, "x\n\"yA"]}|} with
  | J.Obj [ ("a", J.Arr [ J.Num a; J.Num b; J.Bool true; J.Null; J.Str s ]) ]
    when a = 1.0 && b = -250.0 ->
      Alcotest.(check string) "string escapes" "x\n\"yA" s
  | _ -> Alcotest.fail "unexpected parse shape");
  List.iter
    (fun bad ->
      match J.parse bad with
      | Ok _ -> Alcotest.failf "accepted malformed %S" bad
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\" 1}"; "\"unterminated"; "01x"; "{} trailing" ]

let json_roundtrip =
  (* printer -> parser round-trip over random JSON trees *)
  let leaf =
    QCheck.Gen.oneof
      [
        QCheck.Gen.return J.Null;
        QCheck.Gen.map (fun b -> J.Bool b) QCheck.Gen.bool;
        QCheck.Gen.map (fun f -> J.Num f) (QCheck.Gen.float_range (-1e6) 1e6);
        QCheck.Gen.map (fun s -> J.Str s)
          (QCheck.Gen.string_size ~gen:QCheck.Gen.printable
             (QCheck.Gen.int_range 0 8));
      ]
  in
  let tree =
    QCheck.Gen.fix
      (fun self depth ->
        if depth = 0 then leaf
        else
          QCheck.Gen.frequency
            [
              (3, leaf);
              ( 1,
                QCheck.Gen.map (fun xs -> J.Arr xs)
                  (QCheck.Gen.list_size (QCheck.Gen.int_range 0 4)
                     (self (depth - 1))) );
              ( 1,
                QCheck.Gen.map (fun kvs -> J.Obj kvs)
                  (QCheck.Gen.list_size (QCheck.Gen.int_range 0 4)
                     (QCheck.Gen.pair
                        (QCheck.Gen.string_size ~gen:QCheck.Gen.printable
                           (QCheck.Gen.int_range 0 6))
                        (self (depth - 1)))) );
            ])
      2
  in
  Helpers.qtest ~count:300 "json print/parse round-trip"
    (QCheck.make tree) (fun v ->
      match J.parse (J.to_string v) with
      | Error e -> QCheck.Test.fail_reportf "re-parse failed: %s" e
      | Ok v' -> v = v')

let chrome_roundtrip =
  (* arbitrary span/counter names (quotes, backslashes, control chars)
     recorded through the tracer must export to a parseable, balanced
     Chrome trace *)
  let arb =
    QCheck.(
      list_of_size (Gen.int_range 0 25)
        (pair printable_string (float_range 0.0 10.0)))
  in
  Helpers.qtest ~count:100 "chrome trace round-trip" arb (fun pairs ->
      fresh ();
      T.enable ();
      List.iter
        (fun (name, x) ->
          T.with_span ("s:" ^ name) (fun () -> T.count ("c:" ^ name) x))
        pairs;
      T.disable ();
      let text = E.chrome (T.snapshot ()) in
      match (J.parse text, E.validate_chrome text) with
      | Error e, _ -> QCheck.Test.fail_reportf "not JSON: %s" e
      | _, Error e -> QCheck.Test.fail_reportf "invalid trace: %s" e
      | Ok _, Ok n -> n = 2 * List.length pairs)

(* -- Prometheus exposition -------------------------------------------- *)

let test_prometheus_validator () =
  let ok text =
    match E.validate_prometheus text with
    | Ok n -> n
    | Error e -> Alcotest.failf "rejected valid exposition: %s" e
  in
  let bad ~why text =
    match E.validate_prometheus text with
    | Ok _ -> Alcotest.failf "accepted exposition with %s" why
    | Error _ -> ()
  in
  Alcotest.(check int) "empty exposition" 0 (ok "");
  Alcotest.(check int) "minimal family" 1
    (ok "# HELP m_up Up.\n# TYPE m_up gauge\nm_up 1\n");
  Alcotest.(check int) "labels, escapes, nonfinite, timestamp" 3
    (ok
       ("# HELP m_x X.\n# TYPE m_x counter\n"
      ^ "m_x{a=\"q\\\"uo\\\\te\\n\"} 1.5e3\nm_x{a=\"b\"} +Inf\n"
      ^ "m_x{a=\"c\"} NaN 1700000000\n"));
  bad ~why:"no trailing newline" "# HELP m_up Up.\n# TYPE m_up gauge\nm_up 1";
  bad ~why:"TYPE without HELP" "# TYPE m_up gauge\nm_up 1\n";
  bad ~why:"duplicate TYPE"
    "# HELP m Up.\n# TYPE m gauge\n# TYPE m gauge\nm 1\n";
  bad ~why:"bad metric name" "# HELP 1m Up.\n# TYPE 1m gauge\n1m 1\n";
  bad ~why:"bad metric type" "# HELP m Up.\n# TYPE m gouge\nm 1\n";
  bad ~why:"illegal escape" "m{a=\"\\t\"} 1\n";
  bad ~why:"unterminated label value" "m{a=\"x} 1\n";
  bad ~why:"lowercase nonfinite (the %g spelling)" "m inf\n";
  bad ~why:"lowercase nan" "m nan\n";
  bad ~why:"hex float" "m 0x1p3\n";
  bad ~why:"bad timestamp" "m 1 soon\n";
  bad ~why:"interleaved families"
    ("# HELP a A.\n# TYPE a gauge\na 1\n"
   ^ "# HELP b B.\n# TYPE b gauge\nb 1\na 2\n")

let test_prometheus_nonfinite_values () =
  (* regression: %g would render nan/inf in lowercase, which the
     exposition format (and validate_prometheus) rejects *)
  fresh ();
  T.enable ();
  T.gauge "worst_residual" Float.nan;
  T.gauge "hard_ceiling" Float.infinity;
  T.count "steps" 42.0;
  T.disable ();
  let text = E.prometheus (T.snapshot ()) in
  Alcotest.(check bool) "NaN spelled canonically" true
    (Helpers.contains text "NaN");
  Alcotest.(check bool) "+Inf spelled canonically" true
    (Helpers.contains text "+Inf");
  match E.validate_prometheus text with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "nonfinite gauges broke the exposition: %s" e

let prometheus_roundtrip =
  (* arbitrary span/counter names (quotes, backslashes, newlines)
     recorded through the tracer must export to an exposition the
     validator accepts, with one sample per span stat and counter *)
  let arb =
    QCheck.(
      list_of_size (Gen.int_range 0 25)
        (pair printable_string (float_range 0.0 10.0)))
  in
  Helpers.qtest ~count:100 "prometheus exposition round-trip" arb (fun pairs ->
      fresh ();
      T.enable ();
      List.iter
        (fun (name, x) ->
          T.with_span ("s:" ^ name) (fun () -> T.count ("c:" ^ name) x))
        pairs;
      T.disable ();
      let snap = T.snapshot () in
      let text = E.prometheus snap in
      match E.validate_prometheus text with
      | Error e -> QCheck.Test.fail_reportf "invalid exposition: %s" e
      | Ok n ->
          (* span total + span count per distinct span name, one sample
             per distinct counter name *)
          let spans = List.length (E.summarize snap) in
          n = (2 * spans) + List.length snap.T.counters)

let test_prometheus_health_section () =
  (* the health metric families render from a live monitor and validate *)
  fresh ();
  let h =
    Obs.Health.create ~model:"model \"x\"\\v1" ~layout:Obs.Health.Cell_major
      ~nvars:1 ~ncells_pad:2
      ~vars:[ { Obs.Health.v_name = "g{a}"; v_slot = 0; v_gate = true } ]
      ~warn:(fun _ -> ())
      ()
  in
  let sv = Float.Array.make 2 0.5 in
  Float.Array.set sv 1 Float.nan;
  Obs.Health.sample_chunk h ~sv ~vm:None ~lo:0 ~hi:2 ~step:0;
  Obs.Health.note_sampled h;
  let text = E.prometheus ~health:(Obs.Health.snapshot h) (T.snapshot ()) in
  (match E.validate_prometheus text with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "health exposition invalid: %s" e);
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (Helpers.contains text needle))
    [
      "limpetmlir_health_steps_sampled"; "limpetmlir_health_nan_total";
      "limpetmlir_health_state"; "limpetmlir_health_unhealthy";
      "stat=\"mean\"";
    ]

(* -- traced runs are bitwise identical ------------------------------- *)

let test_traced_bitwise_identical () =
  (* the paper-repro guarantee extended to observability: tracing a run
     never changes a single bit of its results, on any model, for both
     optimized engines *)
  List.iter
    (fun (e : Models.Model_def.entry) ->
      let m = Models.Registry.model e in
      let g = Codegen.Cache.generate (C.mlir ~width:4) m in
      List.iter
        (fun (ename, engine) ->
          let d = Sim.Driver.create ~engine g ~ncells:4 ~dt:0.01 in
          let stim = Sim.Stim.make ~amplitude:40.0 ~start:0.05 ~duration:0.1 () in
          let steps = 20 in
          fresh ();
          for _ = 1 to steps do
            Sim.Driver.step ~stim d
          done;
          let plain = Sim.Driver.snapshot d 1 in
          Sim.Driver.reset d;
          T.reset ();
          T.enable ();
          for _ = 1 to steps do
            Sim.Driver.step ~stim d
          done;
          T.disable ();
          let traced = Sim.Driver.snapshot d 1 in
          let s = T.snapshot () in
          if s.T.events = [] then
            Alcotest.failf "%s/%s: traced run recorded no events" e.name ename;
          (match E.validate_chrome (E.chrome s) with
          | Ok _ -> ()
          | Error err ->
              Alcotest.failf "%s/%s: invalid chrome trace: %s" e.name ename err);
          List.iter2
            (fun (n, a) (_, b) ->
              if not (Helpers.same_float a b) then
                Alcotest.failf "%s/%s: tracing changed %s: %.17g vs %.17g"
                  e.name ename n a b)
            plain traced)
        [ ("fused", Sim.Driver.Fused); ("batched", Sim.Driver.Batched) ])
    Models.Registry.all;
  fresh ()

(* -- disabled-path overhead ------------------------------------------ *)

let test_disabled_overhead () =
  (* a disabled tracer must cost one flag load per call: a million
     span+counter calls complete far inside any human-visible budget and
     record nothing.  (The CI batched-vs-fused geomean gate guards the
     real hot path end to end.) *)
  fresh ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 1_000_000 do
    T.with_span "hot" (fun () -> T.count "hot" 1.0)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let s = T.snapshot () in
  Alcotest.(check int) "nothing recorded" 0 (List.length s.T.events);
  Alcotest.(check int) "no counters" 0 (List.length s.T.counters);
  if dt > 2.0 then
    Alcotest.failf "1M disabled calls took %.2f s (expected well under 2 s)" dt

(* -- ring-buffer tail (crash-dump path) ------------------------------- *)

(* the tail contract: at most [limit] events, globally sorted by
   timestamp, and per domain both balanced (well-nested B/E) and
   timestamp-monotonic *)
let check_tail_invariants (evs : T.event list) ~(limit : int) : unit =
  if List.length evs > limit then
    Alcotest.failf "tail returned %d events, limit %d" (List.length evs) limit;
  let rec sorted = function
    | (a : T.event) :: (b :: _ as rest) ->
        if a.T.ev_ts > b.T.ev_ts then
          Alcotest.failf "global order broken: %.3f after %.3f" b.T.ev_ts
            a.T.ev_ts;
        sorted rest
    | _ -> ()
  in
  sorted evs;
  let doms = List.sort_uniq compare (List.map (fun e -> e.T.ev_dom) evs) in
  List.iter
    (fun dom ->
      let mine = List.filter (fun e -> e.T.ev_dom = dom) evs in
      let depth =
        List.fold_left
          (fun d (e : T.event) ->
            let d = match e.T.ev_kind with T.Begin -> d + 1 | T.End -> d - 1 in
            if d < 0 then Alcotest.failf "dom %d: unmatched End" dom;
            d)
          0 mine
      in
      if depth <> 0 then Alcotest.failf "dom %d: %d unclosed Begin(s)" dom depth;
      ignore
        (List.fold_left
           (fun prev (e : T.event) ->
             if e.T.ev_ts < prev then
               Alcotest.failf "dom %d: timestamps not monotonic" dom;
             e.T.ev_ts)
           0.0 mine))
    doms

let tail_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50
       ~name:"tail invariants hold for random span counts and limits"
       QCheck.(pair (int_range 0 200) (int_range 1 64))
       (fun (nspans, limit) ->
         fresh ();
         T.enable ();
         for i = 1 to nspans do
           T.with_span (Printf.sprintf "s%d" (i mod 7)) (fun () -> ())
         done;
         let t = T.tail ~limit () in
         T.disable ();
         check_tail_invariants t ~limit;
         (* with room to spare, the most recent spans are all present *)
         if 2 * nspans <= limit && List.length t <> 2 * nspans then
           QCheck.Test.fail_reportf "expected %d events, got %d" (2 * nspans)
             (List.length t);
         true))

let test_tail_concurrent_writers () =
  (* the crash-dump path reads the tail while other domains are still
     recording; every observed tail must satisfy the invariants *)
  fresh ();
  T.enable ();
  let stop = Atomic.make false in
  let writers =
    List.init 3 (fun w ->
        Domain.spawn (fun () ->
            let i = ref 0 in
            while not (Atomic.get stop) do
              incr i;
              T.with_span (Printf.sprintf "w%d-%d" w (!i mod 5)) (fun () -> ())
            done))
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      List.iter Domain.join writers;
      T.disable ())
    (fun () ->
      for _ = 1 to 200 do
        check_tail_invariants (T.tail ~limit:128 ()) ~limit:128
      done);
  (* writers quiesced: the tail really holds recent events *)
  let t = T.tail ~limit:64 () in
  check_tail_invariants t ~limit:64;
  Alcotest.(check bool) "tail nonempty after recording" true (t <> [])

let suite =
  [
    Alcotest.test_case "disabled records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "spans, counters, gauges" `Quick test_spans_and_counters;
    Alcotest.test_case "snapshot balances open spans" `Quick
      test_snapshot_balances;
    Alcotest.test_case "timestamps monotonic" `Quick test_monotonic_timestamps;
    Alcotest.test_case "ring overwrite stays valid" `Quick
      test_ring_overwrite_counts_dropped;
    Alcotest.test_case "json parser" `Quick test_json_parse;
    json_roundtrip;
    chrome_roundtrip;
    Alcotest.test_case "prometheus validator" `Quick test_prometheus_validator;
    Alcotest.test_case "prometheus nonfinite values" `Quick
      test_prometheus_nonfinite_values;
    prometheus_roundtrip;
    Alcotest.test_case "prometheus health section" `Quick
      test_prometheus_health_section;
    Alcotest.test_case "traced runs bitwise identical (43 models)" `Quick
      test_traced_bitwise_identical;
    Alcotest.test_case "disabled tracing overhead" `Quick test_disabled_overhead;
    tail_qcheck;
    Alcotest.test_case "tail under concurrent writers" `Quick
      test_tail_concurrent_writers;
  ]
