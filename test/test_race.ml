(* Race-checker tests: the Domain-parallel chunking must be proved
   write-disjoint on every model, a deliberately misaligned partition
   must be rejected, and the proof must agree with a sequential-vs-
   parallel differential run. *)

module C = Codegen.Config
module R = Sim.Racecheck

let gen_of name cfg =
  let e = Models.Registry.find_exn name in
  Codegen.Cache.generate_named cfg ~name:e.Models.Model_def.name (fun () ->
      Models.Registry.model e)

let test_all_models_partition_disjoint () =
  List.iter
    (fun (e : Models.Model_def.entry) ->
      List.iter
        (fun cfg ->
          let g =
            Codegen.Cache.generate_named cfg ~name:e.name (fun () ->
                Models.Registry.model e)
          in
          List.iter
            (fun nthreads ->
              match R.check g ~ncells:33 ~nthreads with
              | Ok _ -> ()
              | Error cs ->
                  Alcotest.failf "%s (%s, %d threads): %s" e.name
                    (C.describe cfg) nthreads (R.errors_to_string cs))
            [ 2; 4 ])
        [ C.baseline; C.mlir ~width:4 ])
    Models.Registry.all

let test_misaligned_partition_rejected () =
  let g = gen_of "MitchellSchaeffer" (C.mlir ~width:4) in
  (* chunk boundary at 6 splits a 4-wide block between two domains *)
  (match R.check_partition g ~ncells_pad:16 [ (0, 6); (6, 16) ] with
  | Ok _ -> Alcotest.fail "misaligned partition was not rejected"
  | Error cs ->
      Alcotest.(check bool) "conflicts reported" true (List.length cs > 0);
      Alcotest.(check bool)
        "message names both chunks" true
        (Helpers.contains (R.errors_to_string cs) "[0,6)"));
  (* the same cells split on a block boundary are provably disjoint *)
  match R.check_partition g ~ncells_pad:16 [ (0, 8); (8, 16) ] with
  | Ok pairs -> Alcotest.(check int) "one pair checked" 1 pairs
  | Error cs -> Alcotest.failf "aligned partition rejected: %s"
                  (R.errors_to_string cs)

(* The checker's verdict must match reality: with a proved-disjoint
   partition, a Domain-parallel run is bitwise identical to the
   sequential one. *)
let test_agrees_with_parallel_differential () =
  List.iter
    (fun name ->
      let g = gen_of name (C.mlir ~width:4) in
      (match R.check g ~ncells:13 ~nthreads:4 with
      | Ok _ -> ()
      | Error cs -> Alcotest.failf "%s: %s" name (R.errors_to_string cs));
      let mk () = Sim.Driver.create g ~ncells:13 ~dt:0.01 in
      let ds = mk () and dp = mk () in
      let stim = Sim.Stim.make ~amplitude:40.0 ~start:0.2 ~duration:1.0 () in
      for _ = 1 to 50 do
        Sim.Driver.step ~stim ds;
        Sim.Driver.step ~nthreads:4 ~stim dp
      done;
      for cell = 0 to 12 do
        List.iter2
          (fun (n, a) (_, b) ->
            if not (Helpers.same_float a b) then
              Alcotest.failf "%s: cell %d state %s diverges (%h vs %h)" name
                cell n a b)
          (Sim.Driver.snapshot ds cell)
          (Sim.Driver.snapshot dp cell)
      done)
    [ "MitchellSchaeffer"; "LuoRudy91"; "TenTusscher" ]

let suite =
  [
    Alcotest.test_case "all 43: parallel partitions proved disjoint" `Slow
      test_all_models_partition_disjoint;
    Alcotest.test_case "misaligned partition rejected" `Quick
      test_misaligned_partition_rejected;
    Alcotest.test_case "proof agrees with parallel differential" `Quick
      test_agrees_with_parallel_differential;
  ]
