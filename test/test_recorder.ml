(* Flight-recorder tests: checkpoint serialization round-trips exact bit
   patterns (property-based, including -0.0 / NaN payloads / subnormals),
   driver capture/restore across the three layouts, the
   interrupted-vs-uninterrupted bitwise differential over the whole model
   catalogue (fused and batched; native within its 2-ULP bound), corrupt
   and truncated files failing with structured diagnostics, writer
   rotation/statistics, and the tissue round trip (activation maps and
   block latches included). *)

module R = Obs.Recorder
module D = Sim.Driver
module C = Codegen.Config

(* -- scratch directories --------------------------------------------- *)

let mktemp_dir (prefix : string) : string =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let rec rm_rf (path : string) : unit =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_temp_dir (f : string -> 'a) : 'a =
  let dir = mktemp_dir "limpet-ckpt" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* -- serialization round trip (property-based) ------------------------ *)

(* floats by bit pattern, weighted toward the values plain-text float
   printing would mangle: signed zeros, infinities, NaN payloads,
   subnormals, and uniform random bit patterns *)
let float_bits_gen : float QCheck.Gen.t =
  QCheck.Gen.(
    map Int64.float_of_bits
      (oneof
         [
           oneofl
             [
               0L;
               Int64.min_int (* -0.0 *);
               0x7FF0000000000000L (* +inf *);
               0xFFF0000000000000L (* -inf *);
               0x7FF8000000000001L (* NaN with payload *);
               0xFFFFFFFFFFFFFFFFL (* negative NaN, full payload *);
               1L (* smallest subnormal *);
               0x000FFFFFFFFFFFFFL (* largest subnormal *);
               0x3FF0000000000001L (* 1.0 + 1 ULP *);
             ];
           int64;
         ]))

let token_gen : string QCheck.Gen.t =
  QCheck.Gen.(map (Printf.sprintf "k%d") (int_range 0 99))

(* meta values may contain spaces but never newlines *)
let value_gen : string QCheck.Gen.t =
  QCheck.Gen.(
    map
      (String.map (fun c -> if c = '\n' || c = '\r' then '_' else c))
      (string_size ~gen:printable (int_range 0 12)))

let checkpoint_gen : R.checkpoint QCheck.Gen.t =
  QCheck.Gen.(
    let* nmeta = int_range 0 4 in
    let* meta = list_repeat nmeta (pair token_gen value_gen) in
    let* step = int_range 0 1_000_000 in
    let* time = float_bits_gen in
    let* nsec = int_range 0 4 in
    let* sections =
      flatten_l
        (List.init nsec (fun i ->
             let* len = int_range 0 17 in
             let* data = list_repeat len float_bits_gen in
             return
               {
                 R.sec_name = Printf.sprintf "sec%d" i;
                 sec_data = Float.Array.of_list data;
               }))
    in
    return
      {
        R.ck_meta = meta;
        ck_step = step;
        ck_time = time;
        ck_sections = sections;
      })

let same_bits (a : float) (b : float) : bool =
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let checkpoint_equal (a : R.checkpoint) (b : R.checkpoint) : bool =
  a.R.ck_step = b.R.ck_step
  && same_bits a.R.ck_time b.R.ck_time
  && a.R.ck_meta = b.R.ck_meta
  && List.length a.R.ck_sections = List.length b.R.ck_sections
  && List.for_all2
       (fun (x : R.section) (y : R.section) ->
         x.R.sec_name = y.R.sec_name
         && Float.Array.length x.R.sec_data = Float.Array.length y.R.sec_data
         &&
         let ok = ref true in
         Float.Array.iteri
           (fun i v ->
             if not (same_bits v (Float.Array.get y.R.sec_data i)) then
               ok := false)
           x.R.sec_data;
         !ok)
       a.R.ck_sections b.R.ck_sections

let serialization_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"serialization round-trips exact bit patterns"
       (QCheck.make checkpoint_gen) (fun ck ->
         let s = R.to_string ck in
         match R.of_string s with
         | Error d ->
             QCheck.Test.fail_reportf "parse failed: %s"
               (Easyml.Diag.to_string ~file:"<mem>" d)
         | Ok ck' ->
             checkpoint_equal ck ck' && String.equal (R.digest ck) (R.digest ck')))

(* -- structured errors on corrupt input ------------------------------- *)

let sample_checkpoint () : R.checkpoint =
  {
    R.ck_meta = [ ("kind", "test"); ("note", "two words") ];
    ck_step = 42;
    ck_time = 0.42;
    ck_sections =
      [
        {
          R.sec_name = "sv";
          sec_data = Float.Array.of_list [ 1.0; -0.0; Float.nan; 1e-310 ];
        };
      ];
  }

let expect_error (label : string) (text : string) : unit =
  match R.of_string text with
  | Ok _ -> Alcotest.failf "%s: corrupt input parsed as Ok" label
  | Error d ->
      if
        not
          (List.mem d.Easyml.Diag.code
             [ "checkpoint-format"; "checkpoint-digest"; "checkpoint-io" ])
      then
        Alcotest.failf "%s: unexpected diagnostic code %s" label
          d.Easyml.Diag.code

let test_corrupt_inputs () =
  let good = R.to_string (sample_checkpoint ()) in
  (* sanity: the untouched serialization parses *)
  (match R.of_string good with
  | Ok _ -> ()
  | Error d ->
      Alcotest.failf "pristine input rejected: %s"
        (Easyml.Diag.to_string ~file:"<mem>" d));
  expect_error "empty" "";
  expect_error "garbage" "not a checkpoint at all\n";
  expect_error "bad magic" ("limpetmlir-somethingelse v1\n" ^ good);
  (let lines = String.split_on_char '\n' good in
   match lines with
   | _ :: rest ->
       expect_error "future version"
         (String.concat "\n" (("limpetmlir-checkpoint v99") :: rest))
   | [] -> Alcotest.fail "empty serialization");
  (* truncation at every line boundary must fail structurally *)
  let lines = String.split_on_char '\n' good in
  let n = List.length lines in
  for keep = 1 to n - 2 do
    let truncated =
      String.concat "\n" (List.filteri (fun i _ -> i < keep) lines) ^ "\n"
    in
    expect_error (Printf.sprintf "truncated after %d line(s)" keep) truncated
  done;
  (* single flipped hex digit inside a section body: the content digest
     must catch it.  The sample's first section datum is 1.0 =
     3ff0000000000000; flip its leading nibble. *)
  (match String.index_opt good ' ' with
  | None -> Alcotest.fail "no tokens in serialization"
  | Some _ ->
      let target = "3ff0000000000000" in
      let rec find i =
        if i + String.length target > String.length good then None
        else if String.sub good i (String.length target) = target then Some i
        else find (i + 1)
      in
      (match find 0 with
      | None -> Alcotest.fail "sample serialization lacks the 1.0 pattern"
      | Some i ->
          let flipped = Bytes.of_string good in
          Bytes.set flipped i '4';
          expect_error "bit flip" (Bytes.to_string flipped)));
  (* file-level: a missing path is a checkpoint-io diagnostic *)
  match R.read "/nonexistent/limpet-checkpoint.ckpt" with
  | Ok _ -> Alcotest.fail "read of missing file succeeded"
  | Error d ->
      Alcotest.(check string) "io code" "checkpoint-io" d.Easyml.Diag.code

(* -- driver capture/restore across layouts ---------------------------- *)

let stim = Sim.Stim.default

let config_of_layout (name : string) : C.t =
  match Runtime.Layout.of_string name with
  | Some l -> { (C.mlir ~width:4) with C.layout = l }
  | None -> Alcotest.failf "bad layout %s" name

let test_layout_roundtrip () =
  let m = Models.Registry.model (Option.get (Models.Registry.find "BeelerReuter")) in
  List.iter
    (fun layout ->
      let cfg = config_of_layout layout in
      let g = Codegen.Cache.generate cfg m in
      let mk () = D.create g ~ncells:6 ~dt:0.01 in
      (* uninterrupted control *)
      let d0 = mk () in
      ignore (D.run ~stim d0 ~steps:60);
      let want = R.digest (D.capture d0) in
      (* interrupted: run, capture through a file, restore into a fresh
         driver, finish *)
      let d1 = mk () in
      ignore (D.run ~stim d1 ~steps:23);
      let ck = D.capture d1 in
      with_temp_dir (fun dir ->
          let path = Filename.concat dir "ck" in
          ignore (R.write ~path ck);
          match R.read path with
          | Error e ->
              Alcotest.failf "%s: re-read failed: %s" layout
                (Easyml.Diag.to_string ~file:path e)
          | Ok ck' -> (
              let d2 = mk () in
              match D.restore d2 ck' with
              | Error e ->
                  Alcotest.failf "%s: restore failed: %s" layout
                    (Easyml.Diag.to_string ~file:path e)
              | Ok () ->
                  ignore (D.run ~stim d2 ~steps:37);
                  Alcotest.(check string)
                    (layout ^ ": resumed digest matches uninterrupted")
                    want
                    (R.digest (D.capture d2)))))
    [ "aos"; "soa"; "aosoa4" ]

let test_restore_rejects_mismatch () =
  let m = Models.Registry.model (Option.get (Models.Registry.find "BeelerReuter")) in
  let g = Codegen.Cache.generate (C.mlir ~width:4) m in
  let d = D.create g ~ncells:6 ~dt:0.01 in
  let ck = D.capture d in
  (* wrong population *)
  let other = D.create g ~ncells:12 ~dt:0.01 in
  (match D.restore other ck with
  | Ok () -> Alcotest.fail "restore into a different population succeeded"
  | Error e ->
      Alcotest.(check string) "mismatch code" "checkpoint-mismatch"
        e.Easyml.Diag.code);
  (* wrong dt (different bit pattern) *)
  let other = D.create g ~ncells:6 ~dt:0.02 in
  (match D.restore other ck with
  | Ok () -> Alcotest.fail "restore under a different dt succeeded"
  | Error e ->
      Alcotest.(check string) "mismatch code" "checkpoint-mismatch"
        e.Easyml.Diag.code);
  (* wrong model *)
  let m2 = Models.Registry.model (Option.get (Models.Registry.find "FentonKarma")) in
  let g2 = Codegen.Cache.generate (C.mlir ~width:4) m2 in
  let other = D.create g2 ~ncells:6 ~dt:0.01 in
  match D.restore other ck with
  | Ok () -> Alcotest.fail "restore into a different model succeeded"
  | Error e ->
      Alcotest.(check string) "mismatch code" "checkpoint-mismatch"
        e.Easyml.Diag.code

(* -- interrupted vs uninterrupted over the catalogue ------------------- *)

let test_catalogue_bitwise_identical () =
  (* resuming from a checkpoint must not change a single result bit, on
     any model, for both optimized engines *)
  List.iter
    (fun (e : Models.Model_def.entry) ->
      let m = Models.Registry.model e in
      let g = Codegen.Cache.generate (C.mlir ~width:4) m in
      List.iter
        (fun (ename, engine) ->
          let mk () = D.create ~engine g ~ncells:4 ~dt:0.01 in
          let d0 = mk () in
          ignore (D.run ~stim d0 ~steps:60);
          let want = R.digest (D.capture d0) in
          let d1 = mk () in
          ignore (D.run ~stim d1 ~steps:23);
          let ck = D.capture d1 in
          let d2 = mk () in
          (match D.restore d2 ck with
          | Error err ->
              Alcotest.failf "%s/%s: restore failed: %s" e.name ename
                (Easyml.Diag.to_string ~file:"<mem>" err)
          | Ok () -> ());
          ignore (D.run ~stim d2 ~steps:37);
          let got = R.digest (D.capture d2) in
          if not (String.equal want got) then
            Alcotest.failf "%s/%s: resumed digest %s, uninterrupted %s" e.name
              ename got want)
        [ ("fused", D.Fused); ("batched", D.Batched) ])
    Models.Registry.all

(* native: interrupted-vs-uninterrupted is bitwise against itself (same
   compiled artifact both sides) and within the kernels' 2-ULP bound
   against the fused control *)
let native_ulp_bound = 2L

let ulp_diff (a : float) (b : float) : int64 =
  if Float.is_nan a && Float.is_nan b then 0L
  else if Float.is_nan a || Float.is_nan b then Int64.max_int
  else
    let line x =
      let bits = Int64.bits_of_float x in
      if Int64.compare bits 0L < 0 then Int64.sub Int64.min_int bits else bits
    in
    Int64.abs (Int64.sub (line a) (line b))

let test_native_replay () =
  if not (Exec.Native.available ()) then ()
  else
    List.iter
      (fun name ->
        let m = Models.Registry.model (Option.get (Models.Registry.find name)) in
        let g = Codegen.Cache.generate (C.mlir ~width:4) m in
        let mk engine = D.create ~engine g ~ncells:4 ~dt:0.01 in
        let d0 = mk D.Native in
        ignore (D.run ~stim d0 ~steps:60);
        let want = R.digest (D.capture d0) in
        let d1 = mk D.Native in
        ignore (D.run ~stim d1 ~steps:23);
        let ck = D.capture d1 in
        let d2 = mk D.Native in
        (match D.restore d2 ck with
        | Error err ->
            Alcotest.failf "%s/native: restore failed: %s" name
              (Easyml.Diag.to_string ~file:"<mem>" err)
        | Ok () -> ());
        ignore (D.run ~stim d2 ~steps:37);
        Alcotest.(check string)
          (name ^ "/native: resumed digest bitwise vs native control")
          want
          (R.digest (D.capture d2));
        (* and the resumed native trajectory stays inside the native
           engine's documented ULP envelope of the fused control *)
        let fused = mk D.Fused in
        ignore (D.run ~stim fused ~steps:60);
        List.iter2
          (fun (var, a) (_, b) ->
            let d = ulp_diff a b in
            if Int64.compare d native_ulp_bound > 0 then
              Alcotest.failf "%s/native: %s diverged by %Ld ULP" name var d)
          (D.snapshot fused 1) (D.snapshot d2 1))
      [ "BeelerReuter"; "FentonKarma" ]

(* -- periodic writer: stride, rotation, verification, stats ------------ *)

let test_writer_rotation_and_stats () =
  with_temp_dir (fun dir ->
      let w =
        R.create_writer ~keep:2 ~extra:[ ("run", "rotation-test") ] ~dir
          ~stride:10 ()
      in
      Alcotest.(check bool) "step 0 not due" false (R.due w ~step:0);
      Alcotest.(check bool) "step 10 due" true (R.due w ~step:10);
      Alcotest.(check bool) "step 15 not due" false (R.due w ~step:15);
      Alcotest.(check (option string)) "no file yet" None (R.last w);
      let record step =
        ignore (R.record w { (sample_checkpoint ()) with R.ck_step = step })
      in
      List.iter record [ 10; 20; 30; 40 ];
      let files =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".ckpt")
        |> List.sort compare
      in
      Alcotest.(check (list string))
        "rotation keeps the newest two"
        [ "checkpoint-000000000030.ckpt"; "checkpoint-000000000040.ckpt" ]
        files;
      (match R.last w with
      | Some p ->
          Alcotest.(check string) "last points at the newest"
            "checkpoint-000000000040.ckpt" (Filename.basename p);
          (* the writer's extra metadata landed in the file *)
          (match R.read p with
          | Ok ck ->
              Alcotest.(check (option string))
                "extra meta merged" (Some "rotation-test") (R.meta ck "run")
          | Error e ->
              Alcotest.failf "re-read failed: %s"
                (Easyml.Diag.to_string ~file:p e))
      | None -> Alcotest.fail "last = None after four writes");
      let s = R.stats w in
      Alcotest.(check int) "writes counted" 4 s.Obs.Export.cp_writes;
      Alcotest.(check int) "last step tracked" 40 s.Obs.Export.cp_last_step;
      Alcotest.(check int) "no verify failures" 0
        s.Obs.Export.cp_verify_failures;
      Alcotest.(check bool) "bytes accumulated" true
        (s.Obs.Export.cp_bytes > 0))

(* -- crash dump bundle ------------------------------------------------- *)

let test_crash_dump_bundle () =
  with_temp_dir (fun dir ->
      let w = R.create_writer ~dir ~stride:1 () in
      let last = R.record w (sample_checkpoint ()) in
      Obs.Tracer.reset ();
      Obs.Tracer.enable ();
      Obs.Tracer.with_span "doomed" (fun () -> ());
      let events = Obs.Tracer.tail () in
      Obs.Tracer.disable ();
      let bundle =
        R.crash_dump ~dir ~last_checkpoint:last ~events
          ~health:"UNHEALTHY: test\n"
          ~report:
            (Obs.Json.Obj
               [ ("reason", Obs.Json.Str "test"); ("step", Obs.Json.Num 7.0) ])
          ()
      in
      List.iter
        (fun f ->
          if not (Sys.file_exists (Filename.concat bundle f)) then
            Alcotest.failf "bundle lacks %s" f)
        [
          "report.json"; "trace_tail.json"; "health.txt";
          Filename.basename last;
        ];
      (* the report is valid JSON and carries the structured fields *)
      let ic = open_in (Filename.concat bundle "report.json") in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Obs.Json.parse text with
      | Error e -> Alcotest.failf "report.json unparseable: %s" e
      | Ok j ->
          Alcotest.(check (option string))
            "reason survives" (Some "test")
            (Option.bind (Obs.Json.member "reason" j) Obs.Json.to_str))

(* -- tissue round trip -------------------------------------------------- *)

let test_tissue_roundtrip () =
  let m = Models.Registry.model (Option.get (Models.Registry.find "FentonKarma")) in
  let g = Codegen.Cache.generate (C.mlir ~width:4) m in
  let geom = Tissue.Geometry.cable ~n:32 ~dx:0.01 in
  let mk () =
    Tissue.Monodomain.create g ~geom ~dt:0.01
      ~protocol:(Tissue.Protocol.s1 ~width:4 geom)
  in
  let s0 = mk () in
  ignore (Tissue.Monodomain.run s0 ~steps:900);
  let want = R.digest (Tissue.Monodomain.capture s0) in
  let s1 = mk () in
  ignore (Tissue.Monodomain.run s1 ~steps:400);
  let ck = Tissue.Monodomain.capture s1 in
  Alcotest.(check (option string))
    "tissue kind" (Some "tissue") (R.meta ck "kind");
  let s2 = mk () in
  (match Tissue.Monodomain.restore s2 ck with
  | Error e ->
      Alcotest.failf "tissue restore failed: %s"
        (Easyml.Diag.to_string ~file:"<mem>" e)
  | Ok () -> ());
  ignore (Tissue.Monodomain.run s2 ~steps:500);
  Alcotest.(check string) "tissue resumed digest matches" want
    (R.digest (Tissue.Monodomain.capture s2));
  (* the activation detector resumed exactly: identical maps *)
  Alcotest.(check string) "activation map identical"
    (Tissue.Activation.to_csv (Tissue.Monodomain.activation s0) geom)
    (Tissue.Activation.to_csv (Tissue.Monodomain.activation s2) geom);
  (* a restored checkpoint refuses a different geometry *)
  let other_geom = Tissue.Geometry.cable ~n:48 ~dx:0.01 in
  let s3 =
    Tissue.Monodomain.create g ~geom:other_geom ~dt:0.01
      ~protocol:(Tissue.Protocol.s1 ~width:4 other_geom)
  in
  match Tissue.Monodomain.restore s3 ck with
  | Ok () -> Alcotest.fail "restore into a different geometry succeeded"
  | Error e ->
      Alcotest.(check string) "geometry mismatch code" "checkpoint-mismatch"
        e.Easyml.Diag.code

let suite =
  [
    serialization_roundtrip;
    Alcotest.test_case "corrupt inputs fail structurally" `Quick
      test_corrupt_inputs;
    Alcotest.test_case "capture/restore across the three layouts" `Quick
      test_layout_roundtrip;
    Alcotest.test_case "restore rejects mismatched drivers" `Quick
      test_restore_rejects_mismatch;
    Alcotest.test_case "interrupted runs bitwise identical (43 models)" `Quick
      test_catalogue_bitwise_identical;
    Alcotest.test_case "native replay (bitwise vs native, ULP vs fused)" `Quick
      test_native_replay;
    Alcotest.test_case "writer stride, rotation and stats" `Quick
      test_writer_rotation_and_stats;
    Alcotest.test_case "crash dump bundle" `Quick test_crash_dump_bundle;
    Alcotest.test_case "tissue round trip" `Quick test_tissue_roundtrip;
  ]
