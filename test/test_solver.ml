(* Solver-substrate tests: tridiagonal, CSR, CG, monodomain cable. *)

open Solver

let fa = Float.Array.of_list

(* -- tridiagonal ---------------------------------------------------------- *)

let test_tridiag_known () =
  (* [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] -> x = [1; 2; 3] *)
  let a = fa [ 0.0; 1.0; 1.0 ] in
  let b = fa [ 2.0; 2.0; 2.0 ] in
  let c = fa [ 1.0; 1.0; 0.0 ] in
  let d = fa [ 4.0; 8.0; 8.0 ] in
  let x = Tridiag.solve ~a ~b ~c ~d in
  List.iteri
    (fun i want -> Helpers.check_close ~tol:1e-12 "x" want (Float.Array.get x i))
    [ 1.0; 2.0; 3.0 ]

let tridiag_residual =
  Helpers.qtest ~count:200 "tridiagonal solve has tiny residual"
    (QCheck.int_range 2 60)
    (fun n ->
      (* diagonally dominant random system *)
      let rnd i = Float.rem (Float.of_int ((i * 2654435761) land 0xFFFF)) 97.0 /. 97.0 in
      let a = Float.Array.init n (fun i -> if i = 0 then 0.0 else rnd i -. 0.5) in
      let c = Float.Array.init n (fun i -> if i = n - 1 then 0.0 else rnd (i + 7) -. 0.5) in
      let b =
        Float.Array.init n (fun i ->
            3.0 +. Float.abs (Float.Array.get a i) +. Float.abs (Float.Array.get c i))
      in
      let d = Float.Array.init n (fun i -> rnd (i + 13) *. 10.0 -. 5.0) in
      let x = Tridiag.solve ~a ~b ~c ~d in
      let ax = Tridiag.mul ~a ~b ~c x in
      let ok = ref true in
      for i = 0 to n - 1 do
        if Float.abs (Float.Array.get ax i -. Float.Array.get d i) > 1e-9 then
          ok := false
      done;
      !ok)

let test_tridiag_singular () =
  let z = fa [ 0.0; 0.0 ] in
  match Tridiag.solve ~a:z ~b:z ~c:z ~d:z with
  | exception Tridiag.Singular 0 -> ()
  | _ -> Alcotest.fail "singular system must raise"

(* -- CSR ------------------------------------------------------------------- *)

let test_csr_mul () =
  let m = Sparse.of_triplets ~n:3 [ (0, 0, 2.0); (0, 2, 1.0); (1, 1, 3.0); (2, 0, -1.0) ] in
  Alcotest.(check int) "nnz" 4 (Sparse.nnz m);
  let y = Sparse.mul m (fa [ 1.0; 2.0; 3.0 ]) in
  List.iteri
    (fun i want -> Helpers.fcheck "y" want (Float.Array.get y i))
    [ 5.0; 6.0; -1.0 ]

let test_csr_duplicates_combine () =
  let m = Sparse.of_triplets ~n:2 [ (0, 0, 1.0); (0, 0, 2.5) ] in
  Alcotest.(check int) "combined" 1 (Sparse.nnz m);
  let y = Sparse.mul m (fa [ 2.0; 0.0 ]) in
  Helpers.fcheck "value" 7.0 (Float.Array.get y 0)

let test_csr_diagonal () =
  let m = Sparse.of_triplets ~n:2 [ (0, 0, 4.0); (0, 1, 9.0); (1, 1, 5.0) ] in
  let d = Sparse.diagonal m in
  Helpers.fcheck "d0" 4.0 (Float.Array.get d 0);
  Helpers.fcheck "d1" 5.0 (Float.Array.get d 1)

(* -- CG --------------------------------------------------------------------- *)

let test_cg_matches_tridiag () =
  let n = 40 in
  let cable = Cable.create ~n ~dx:0.01 ~sigma:0.001 ~cm:1.0 ~dt:0.02 in
  let rhs = Float.Array.init n (fun i -> Float.cos (float_of_int i /. 5.0)) in
  let x_direct =
    Tridiag.solve ~a:cable.Cable.sub ~b:cable.Cable.diag ~c:cable.Cable.sup ~d:rhs
  in
  let x_cg, stats = Cg.solve ~tol:1e-12 (Cable.matrix cable) rhs in
  Alcotest.(check bool) "converged" true (stats.Cg.residual < 1e-10);
  for i = 0 to n - 1 do
    Helpers.check_close ~tol:1e-8 "cg == direct" (Float.Array.get x_direct i)
      (Float.Array.get x_cg i)
  done

let test_cg_identity () =
  let m = Sparse.of_triplets ~n:3 [ (0, 0, 1.0); (1, 1, 1.0); (2, 2, 1.0) ] in
  let b = fa [ 3.0; -1.0; 0.5 ] in
  let x, stats = Cg.solve m b in
  Alcotest.(check bool) "few iterations" true (stats.Cg.iterations <= 2);
  for i = 0 to 2 do
    Helpers.check_close ~tol:1e-10 "identity solve" (Float.Array.get b i)
      (Float.Array.get x i)
  done

(* -- cable ------------------------------------------------------------------ *)

let test_cable_flat_stays_flat () =
  (* no stimulus, uniform Vm, zero Iion: diffusion must not move anything *)
  let n = 32 in
  let cable = Cable.create ~n ~dx:0.01 ~sigma:0.001 ~cm:1.0 ~dt:0.01 in
  let vm = Float.Array.make n (-80.0) in
  let iion = Float.Array.make n 0.0 in
  for _ = 1 to 100 do
    Cable.step cable ~vm ~iion ~istim:0.0 ~stim_lo:0 ~stim_hi:0
  done;
  for i = 0 to n - 1 do
    Helpers.check_close ~tol:1e-9 "flat" (-80.0) (Float.Array.get vm i)
  done

let test_cable_conserves_charge () =
  (* with Neumann boundaries and no reaction, the mean of Vm is conserved *)
  let n = 32 in
  let cable = Cable.create ~n ~dx:0.01 ~sigma:0.002 ~cm:1.0 ~dt:0.01 in
  let vm = Float.Array.init n (fun i -> if i < 8 then 0.0 else -80.0) in
  let iion = Float.Array.make n 0.0 in
  let mean v =
    let s = ref 0.0 in
    Float.Array.iter (fun x -> s := !s +. x) v;
    !s /. float_of_int n
  in
  let m0 = mean vm in
  for _ = 1 to 500 do
    Cable.step cable ~vm ~iion ~istim:0.0 ~stim_lo:0 ~stim_hi:0
  done;
  Helpers.check_close ~tol:1e-6 "mean conserved" m0 (mean vm);
  (* and the profile relaxes toward uniform *)
  let spread = Float.Array.get vm 0 -. Float.Array.get vm (n - 1) in
  Alcotest.(check bool) "diffusion smooths" true (Float.abs spread < 80.0)

let test_cable_stimulus_depolarizes () =
  let n = 16 in
  let cable = Cable.create ~n ~dx:0.01 ~sigma:0.001 ~cm:1.0 ~dt:0.01 in
  let vm = Float.Array.make n (-80.0) in
  let iion = Float.Array.make n 0.0 in
  for _ = 1 to 100 do
    Cable.step cable ~vm ~iion ~istim:50.0 ~stim_lo:0 ~stim_hi:4
  done;
  Alcotest.(check bool) "stimulated end depolarized" true
    (Float.Array.get vm 0 > -60.0);
  Alcotest.(check bool) "monotone decay along fibre" true
    (Float.Array.get vm 0 > Float.Array.get vm (n - 1))

let test_conduction_velocity_helper () =
  let act = [| 1.0; 2.0; 3.0; 4.0 |] in
  (match Cable.conduction_velocity ~dx:0.1 act ~from_cell:0 ~to_cell:3 with
  | Some cv -> Helpers.check_close ~tol:1e-12 "cv" 0.1 cv
  | None -> Alcotest.fail "cv expected");
  match
    Cable.conduction_velocity ~dx:0.1
      [| 1.0; Float.infinity |]
      ~from_cell:0 ~to_cell:1
  with
  | None -> ()
  | Some _ -> Alcotest.fail "unactivated cell must yield None"

(* -- three-way oracle: Thomas == CG == dense Gaussian elimination ---- *)

(* Dense Gaussian elimination with partial pivoting — the textbook
   oracle both production solvers are checked against. *)
let dense_ge_solve (m : float array array) (b : float array) : float array =
  let n = Array.length b in
  let a = Array.map Array.copy m and x = Array.copy b in
  for k = 0 to n - 1 do
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs a.(i).(k) > Float.abs a.(!piv).(k) then piv := i
    done;
    let tmp = a.(k) in
    a.(k) <- a.(!piv);
    a.(!piv) <- tmp;
    let tb = x.(k) in
    x.(k) <- x.(!piv);
    x.(!piv) <- tb;
    for i = k + 1 to n - 1 do
      let f = a.(i).(k) /. a.(k).(k) in
      for j = k to n - 1 do
        a.(i).(j) <- a.(i).(j) -. (f *. a.(k).(j))
      done;
      x.(i) <- x.(i) -. (f *. x.(k))
    done
  done;
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (a.(i).(j) *. x.(j))
    done;
    x.(i) <- !s /. a.(i).(i)
  done;
  x

let solver_oracle =
  (* The SPD family the diffusion step actually solves: I + λ·L with L
     the Neumann 1-D Laplacian and λ = dt·σ/dx² > 0.  Tolerances: the
     dense oracle and Thomas are both direct — they agree to ~1e-12
     relative (cond(I + λL) ≤ 1 + 4λ ≤ 21 here); CG iterates to a 1e-12
     relative residual, so 1e-8 absolute on these O(1) solutions leaves
     two orders of headroom. *)
  Helpers.qtest ~count:150 "tridiag == cg == dense GE on SPD Laplacian"
    QCheck.(
      triple (int_range 2 40)
        (float_range 0.01 5.0)
        (int_range 0 10_000))
    (fun (n, lambda, seed) ->
      let sub =
        Float.Array.init n (fun i -> if i = 0 then 0.0 else -.lambda)
      and sup =
        Float.Array.init n (fun i -> if i = n - 1 then 0.0 else -.lambda)
      and diag =
        Float.Array.init n (fun i ->
            let deg = (if i > 0 then 1.0 else 0.0) +. if i < n - 1 then 1.0 else 0.0 in
            1.0 +. (lambda *. deg))
      in
      let rhs =
        Float.Array.init n (fun i ->
            Float.sin (float_of_int ((seed + (i * 37)) mod 1000) /. 31.0))
      in
      let x_thomas = Tridiag.solve ~a:sub ~b:diag ~c:sup ~d:rhs in
      let triplets = ref [] in
      for i = 0 to n - 1 do
        triplets := (i, i, Float.Array.get diag i) :: !triplets;
        if i > 0 then triplets := (i, i - 1, -.lambda) :: !triplets;
        if i < n - 1 then triplets := (i, i + 1, -.lambda) :: !triplets
      done;
      let x_cg, _ =
        Cg.solve ~tol:1e-12 ~max_iters:10_000
          (Sparse.of_triplets ~n !triplets)
          rhs
      in
      let dense =
        Array.init n (fun i ->
            Array.init n (fun j ->
                if i = j then Float.Array.get diag i
                else if abs (i - j) = 1 then -.lambda
                else 0.0))
      in
      let x_ge =
        dense_ge_solve dense (Array.init n (Float.Array.get rhs))
      in
      let ok = ref true in
      for i = 0 to n - 1 do
        if not (Helpers.close ~tol:1e-10 (Float.Array.get x_thomas i) x_ge.(i))
        then ok := false;
        if not (Helpers.close ~tol:1e-8 (Float.Array.get x_cg i) x_ge.(i))
        then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "tridiag known system" `Quick test_tridiag_known;
    solver_oracle;
    tridiag_residual;
    Alcotest.test_case "tridiag singular" `Quick test_tridiag_singular;
    Alcotest.test_case "csr mul" `Quick test_csr_mul;
    Alcotest.test_case "csr duplicate triplets" `Quick test_csr_duplicates_combine;
    Alcotest.test_case "csr diagonal" `Quick test_csr_diagonal;
    Alcotest.test_case "cg == direct solve" `Quick test_cg_matches_tridiag;
    Alcotest.test_case "cg identity" `Quick test_cg_identity;
    Alcotest.test_case "cable: flat stays flat" `Quick test_cable_flat_stays_flat;
    Alcotest.test_case "cable: charge conserved" `Quick
      test_cable_conserves_charge;
    Alcotest.test_case "cable: stimulus depolarizes" `Quick
      test_cable_stimulus_depolarizes;
    Alcotest.test_case "conduction velocity helper" `Quick
      test_conduction_velocity_helper;
  ]
