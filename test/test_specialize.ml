(* Runtime-specialization tests: qcheck semantic-identity property on
   random straight-line kernels with random binding environments, the
   43-model bitwise differential (specialized == unspecialized on the
   fused and batched engines), cache identity of specialized artifacts,
   canonical env serialization, and the stimulus phase split. *)

open Exec
module C = Codegen.Config
module B = Ir.Builder
module S = Passes.Specialize

let stim = Sim.Stim.make ~amplitude:40.0 ~start:0.5 ~duration:1.0 ()
let ncells = 13
let configs = [ ("scalar", C.baseline); ("vector", C.mlir ~width:4) ]

let gen_of name cfg =
  let e = Models.Registry.find_exn name in
  Codegen.Cache.generate_named cfg ~name:e.Models.Model_def.name (fun () ->
      Models.Registry.model e)

(* -- qcheck: specialization is a semantic identity ---------------------- *)

(* A random expression over two loaded streams and one scalar parameter
   [k], lowered into a parallel loop.  Specializing on [k] must leave
   the observable function bitwise unchanged — on the closure engine and
   on the batched engine (whose constant-row prefill the folded
   broadcasts feed). *)
let lower_kernel ~(w : int) (e : Easyml.Ast.expr) : Ir.Func.modl =
  let m = Ir.Func.create_module "spec_loop" in
  let c = B.create_ctx () in
  Ir.Func.add_func m
    (B.func c ~name:"f"
       ~params:[ Ir.Ty.Memref; Ir.Ty.Memref; Ir.Ty.Memref; Ir.Ty.I64; Ir.Ty.F64 ]
       ~results:[]
       (fun b args ->
         let in1 = List.nth args 0
         and in2 = List.nth args 1
         and out = List.nth args 2
         and n = List.nth args 3
         and k = List.nth args 4 in
         ignore
           (B.for_ b ~parallel:true ~lb:(B.consti b 0) ~ub:n
              ~step:(B.consti b w) ~inits:[]
              (fun ~iv ~iters:_ ->
                let x, y =
                  if w = 1 then
                    (B.load b ~mem:in1 ~idx:iv, B.load b ~mem:in2 ~idx:iv)
                  else
                    ( B.vec_load b ~width:w ~mem:in1 ~idx:iv,
                      B.vec_load b ~width:w ~mem:in2 ~idx:iv )
                in
                let kv = if w = 1 then k else B.broadcast b ~width:w k in
                let env =
                  Codegen.Lower.make_env ~b ~width:w
                    [ ("x", x); ("y", y); ("k", kv) ]
                in
                let r = Codegen.Lower.lower_num env e in
                if w = 1 then B.store b r ~mem:out ~idx:iv
                else B.vec_store b ~vec:r ~mem:out ~idx:iv;
                []));
         B.ret b []));
  m

let run_kernel ~(engine : [ `Batched | `Closure ]) (m : Ir.Func.modl)
    ~(n : int) ~(k : float) (in1 : floatarray) (in2 : floatarray) : floatarray
    =
  let out = Float.Array.make n 0.0 in
  let args = [| Rt.M in1; Rt.M in2; Rt.M out; Rt.I n; Rt.F k |] in
  (match engine with
  | `Batched -> ignore (Batched.run ~tile:0 m "f" args)
  | `Closure -> ignore (Engine.run m "f" args));
  out

let spec_identity ~(w : int) name =
  Helpers.qtest ~count:120 name
    QCheck.(
      pair
        (Helpers.arbitrary_expr [ "x"; "y"; "k" ])
        (float_range (-4.0) 4.0))
    (fun (e, kval) ->
      let m = lower_kernel ~w e in
      Ir.Verifier.verify_module_exn m;
      let spec, st =
        S.run m ~bind:(fun fn ->
            if String.equal fn.Ir.Func.f_name "f" then
              [ (List.nth fn.Ir.Func.f_params 4, S.BF kval) ]
            else [])
      in
      Ir.Verifier.verify_module_exn spec;
      if st.S.bound <> 1 then
        QCheck.Test.fail_reportf "expected 1 binding, got %d" st.S.bound;
      let n = 12 in
      let in1 = Float.Array.init n (fun i -> Float.sin (float_of_int (i + 1)))
      and in2 = Float.Array.init n (fun i -> Float.cos (float_of_int i)) in
      let want = run_kernel ~engine:`Closure m ~n ~k:kval in1 in2 in
      List.for_all
        (fun engine ->
          let got = run_kernel ~engine spec ~n ~k:kval in1 in2 in
          let ok = ref true in
          for i = 0 to n - 1 do
            if
              not
                (Helpers.same_float (Float.Array.get got i)
                   (Float.Array.get want i))
            then ok := false
          done;
          !ok)
        [ `Closure; `Batched ])

(* -- 43-model bitwise differential -------------------------------------- *)

(* Specialized == unspecialized, bitwise, for every bundled model on the
   fused and batched engines, scalar and vector configs: the exploited
   run constants (dt, padded cell count, stimulus phases) fold without
   perturbing a single bit of the trajectory. *)
let test_all_models_specialized_bitwise () =
  List.iter
    (fun (e : Models.Model_def.entry) ->
      List.iter
        (fun (cname, cfg) ->
          let g =
            Codegen.Cache.generate_named cfg ~name:e.name (fun () ->
                Models.Registry.model e)
          in
          let run d =
            for _ = 1 to 50 do
              Sim.Driver.step ~stim d
            done;
            List.map (fun c -> (c, Sim.Driver.snapshot d c)) [ 0; 6; 12 ]
          in
          List.iter
            (fun (ename, engine) ->
              let base =
                run
                  (Sim.Driver.create ~engine ~specialize:false g ~ncells
                     ~dt:0.01)
              in
              let spec =
                run
                  (Sim.Driver.create ~engine ~specialize:true g ~ncells
                     ~dt:0.01)
              in
              List.iter2
                (fun (cell, a) (_, b) ->
                  Test_batched.check_snapshots
                    ~ctx:
                      (Printf.sprintf "%s/%s/%s cell %d" e.name cname ename
                         cell)
                    a b)
                base spec)
            [ ("fused", Sim.Driver.Fused); ("batched", Sim.Driver.Batched) ])
        configs)
    Models.Registry.all

(* The reference interpreter stays the pristine differential baseline:
   asking for specialization on it is a no-op. *)
let test_reference_never_specialized () =
  let g = gen_of "MitchellSchaeffer" C.baseline in
  let d =
    Sim.Driver.create ~engine:Sim.Driver.Reference ~specialize:true g
      ~ncells:4 ~dt:0.01
  in
  Alcotest.(check bool)
    "reference driver not specialized" false d.Sim.Driver.specialized;
  let df = Sim.Driver.create ~specialize:true g ~ncells:4 ~dt:0.01 in
  Alcotest.(check bool) "fused driver specialized" true df.Sim.Driver.specialized

(* -- cache identity ------------------------------------------------------ *)

let test_cache_identity () =
  (* off-beat dt / pad so earlier tests cannot have warmed these keys *)
  let g = gen_of "MitchellSchaeffer" (C.mlir ~width:4) in
  Codegen.Cache.reset_stats ();
  let s1 = Codegen.Cache.specialize g ~dt:0.017 ~ncells_pad:24 in
  let s2 = Codegen.Cache.specialize g ~dt:0.017 ~ncells_pad:24 in
  Alcotest.(check bool) "same env twice is one artifact" true (s1 == s2);
  let st = Codegen.Cache.stats () in
  Alcotest.(check int) "one specialization run" 1 st.Codegen.Cache.spec_misses;
  Alcotest.(check bool) "second lookup hit" true (st.Codegen.Cache.spec_hits >= 1);
  let s3 = Codegen.Cache.specialize g ~dt:0.019 ~ncells_pad:24 in
  Alcotest.(check bool) "different dt is a new artifact" true (s3 != s1);
  (* content identity: a freshly generated kernel with bitwise-identical
     IR (deterministic codegen) shares the cached artifact even though
     it is a different physical instance *)
  let e = Models.Registry.find_exn "MitchellSchaeffer" in
  let g2 =
    Codegen.Kernel.generate (C.mlir ~width:4) (Models.Registry.model e)
  in
  let s4 = Codegen.Cache.specialize g2 ~dt:0.017 ~ncells_pad:24 in
  Alcotest.(check bool) "identical content shares the artifact" true
    (s4 == s1)

(* Two different kernels under one model name and one env must never
   alias: the content digest in the specialization key keeps them
   apart (a name-keyed env alone would serve the first kernel's
   artifact for the second kernel). *)
let test_cache_content_digest () =
  let source coeff =
    Printf.sprintf
      "Vm; .external(); .nodal();\n\
       Iion; .external(); .nodal();\n\
       Vm_init = -65.0;\n\
       m; m_init = 0.1;\n\
       diff_m = (%s - m)/1.0;\n\
       Iion = m*(Vm + 65.0);\n"
      coeff
  in
  let gen coeff =
    let m = Easyml.Sema.analyze_source ~name:"spec_twin" (source coeff) in
    Codegen.Kernel.generate C.baseline m
  in
  let ga = gen "0.2" and gb = gen "0.3" in
  let sa = Codegen.Cache.specialize ga ~dt:0.013 ~ncells_pad:8 in
  let sb = Codegen.Cache.specialize gb ~dt:0.013 ~ncells_pad:8 in
  Alcotest.(check bool) "same name, different content, distinct artifacts"
    true (sa != sb)

let test_canon_env () =
  let a = ("dt", S.BF 0.01) and b = ("ncells_pad", S.BI 16) in
  Alcotest.(check string)
    "order independent"
    (S.canon_env [ a; b ])
    (S.canon_env [ b; a ]);
  Alcotest.(check bool)
    "-0.0 does not alias 0.0" true
    (S.canon_env [ ("x", S.BF 0.0) ] <> S.canon_env [ ("x", S.BF (-0.0)) ]);
  Alcotest.(check bool)
    "float and int bindings distinct" true
    (S.canon_env [ ("x", S.BF 1.0) ] <> S.canon_env [ ("x", S.BI 1) ])

(* The driver binds both run constants on real kernels. *)
let test_driver_bindings_bound () =
  let g = gen_of "LuoRudy91" (C.mlir ~width:4) in
  let _, st =
    S.run g.Codegen.Kernel.modl
      ~bind:(Codegen.Cache.spec_bindings ~dt:0.01 ~ncells_pad:16)
  in
  Alcotest.(check bool)
    (Printf.sprintf "compute + lut_init bindings (got %d)" st.S.bound)
    true (st.S.bound >= 2)

(* -- stimulus phase split ------------------------------------------------ *)

let segments_exact_rle =
  Helpers.qtest ~count:300 "stim segments are an exact RLE of at()"
    QCheck.(
      quad (float_range 0.0 2.0) (float_range 0.0 1.0)
        (float_range 0.001 0.05) (int_range 0 300))
    (fun (start, duration, dt, steps) ->
      let s = Sim.Stim.make ~amplitude:40.0 ~start ~duration ~period:1.5 () in
      let segs = Sim.Stim.segments s ~t0:0.0 ~dt ~steps in
      let total = List.fold_left (fun acc (_, n) -> acc + n) 0 segs in
      if total <> steps then false
      else begin
        (* replaying the RLE reproduces at() on the exact accumulated
           time sequence the driver walks *)
        let t = ref 0.0 and ok = ref true in
        List.iter
          (fun (v, n) ->
            for _ = 1 to n do
              if not (Float.equal (Sim.Stim.at s !t) v) then ok := false;
              t := !t +. dt
            done)
          segs;
        !ok
      end)

let suite =
  [
    spec_identity ~w:1
      "specialize == identity on random scalar kernels (closure + batched)";
    spec_identity ~w:4
      "specialize == identity on random vector kernels (closure + batched)";
    Alcotest.test_case "all 43: specialized == unspecialized bitwise" `Slow
      test_all_models_specialized_bitwise;
    Alcotest.test_case "reference engine never specialized" `Quick
      test_reference_never_specialized;
    Alcotest.test_case "specialized artifacts cached by identity" `Quick
      test_cache_identity;
    Alcotest.test_case "content digest keeps same-name kernels apart" `Quick
      test_cache_content_digest;
    Alcotest.test_case "canonical env serialization" `Quick test_canon_env;
    Alcotest.test_case "driver run constants all bind" `Quick
      test_driver_bindings_bound;
    segments_exact_rle;
  ]
