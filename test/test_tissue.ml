(* Tissue subsystem tests: spatial stimulus masks, operator-splitting
   order pinning, cross-engine/cross-thread bitwise differentials, the
   conduction-block detector, 2-D reentry induction and the 1-D
   planar-wave conduction-velocity golden. *)

module Stim = Sim.Stim
module Geometry = Tissue.Geometry
module Protocol = Tissue.Protocol
module Diffusion = Tissue.Diffusion
module Activation = Tissue.Activation
module Monodomain = Tissue.Monodomain

let read_file path =
  (* cwd is test/ under `dune runtest` but the repo root under
     `dune exec test/test_main.exe` *)
  let path = if Sys.file_exists path then path else "test/" ^ path in
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let fixture_model =
  lazy
    (Easyml.Sema.analyze_source ~name:"fast_upstroke"
       (read_file "fixtures/fast_upstroke.easyml"))

let fixture_gen () =
  Codegen.Cache.generate (Codegen.Config.mlir ~width:8)
    (Lazy.force fixture_model)

(* -- spatial stimulus masks ------------------------------------------ *)

let stim_uniform_bitwise =
  (* The spatial lifting must leave the scalar path untouched: a Uniform
     mask is bit-for-bit the plain [Stim.at] result at every (t, cell),
     including outside the pulse and on period wrap-around. *)
  Helpers.qtest ~count:300 "uniform mask == scalar Stim.at (bitwise)"
    QCheck.(
      quad (float_range 0.0 50.0) (float_range 0.1 10.0)
        (float_range 0.0 400.0) (int_range 0 63))
    (fun (start, duration, t, cell) ->
      let check pulse =
        let s = Stim.uniform pulse in
        let a = Stim.at pulse t and b = Stim.at_cell s ~t ~cell in
        Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
      in
      check (Stim.make ~amplitude:63.5 ~start ~duration ())
      && check (Stim.make ~amplitude:63.5 ~start ~duration ~period:100.0 ()))

let test_stim_region () =
  let pulse = Stim.make ~amplitude:10.0 ~start:0.0 ~duration:5.0 () in
  let s = Stim.region pulse ~n:10 ~lo:2 ~hi:5 in
  for cell = 0 to 9 do
    let want = if cell >= 2 && cell < 5 then 10.0 else 0.0 in
    Helpers.check_close ~tol:0.0 "region weight" want
      (Stim.at_cell s ~t:1.0 ~cell)
  done;
  (* outside the pulse window every cell reads 0 *)
  Alcotest.(check (float 0.0)) "after pulse" 0.0 (Stim.at_cell s ~t:6.0 ~cell:3);
  Alcotest.check_raises "bad region"
    (Invalid_argument "Stim.region: need 0 <= lo <= hi <= n") (fun () ->
      ignore (Stim.region pulse ~n:4 ~lo:2 ~hi:5))

(* -- geometry -------------------------------------------------------- *)

let geometry_roundtrip =
  Helpers.qtest ~count:200 "geometry index/coords roundtrip"
    QCheck.(triple (int_range 2 17) (int_range 2 13) (int_range 0 1000))
    (fun (nx, ny, k) ->
      let g = Geometry.sheet ~nx ~ny ~dx:0.01 in
      let cell = k mod Geometry.cells g in
      let x, y = Geometry.coords g cell in
      Geometry.index g ~x ~y = cell)

(* -- diffusion operator ---------------------------------------------- *)

let test_diffusion_residual () =
  (* solve then multiply back: residual at the solver tolerances *)
  List.iter
    (fun geom ->
      let op = Diffusion.assemble geom ~sigma:0.001 ~dt:0.01 in
      let n = Geometry.cells geom in
      let b =
        Float.Array.init n (fun i -> Float.sin (float_of_int i /. 5.0))
      in
      let x = Diffusion.solve op b in
      let ax = Solver.Sparse.mul (Diffusion.matrix op) x in
      for i = 0 to n - 1 do
        Helpers.check_close ~tol:1e-8 "residual" (Float.Array.get b i)
          (Float.Array.get ax i)
      done)
    [ Geometry.cable ~n:40 ~dx:0.01; Geometry.sheet ~nx:12 ~ny:9 ~dx:0.01 ]

let test_diffusion_conserves_flat () =
  (* Neumann boundaries: a flat field is a fixed point of pure diffusion *)
  let geom = Geometry.sheet ~nx:8 ~ny:8 ~dx:0.01 in
  let op = Diffusion.assemble geom ~sigma:0.002 ~dt:0.05 in
  let b = Float.Array.make (Geometry.cells geom) (-80.0) in
  let x = Diffusion.solve op b in
  Float.Array.iter
    (fun v -> Helpers.check_close ~tol:1e-9 "flat fixed point" (-80.0) v)
    x

(* -- activation recorder --------------------------------------------- *)

let test_activation_interpolation () =
  let a = Activation.create ~threshold:(-20.0) ~reset:(-60.0) ~n:1 () in
  let vm v = Float.Array.of_list [ v ] in
  Activation.observe a ~t_prev:0.0 ~t_now:0.0 ~vm:(vm (-80.0));
  Activation.observe a ~t_prev:0.0 ~t_now:1.0 ~vm:(vm (-80.0));
  (* crossing from -40 to 0 between t=1 and t=2: θ=-20 is halfway *)
  Activation.observe a ~t_prev:1.0 ~t_now:2.0 ~vm:(vm (-40.0));
  Activation.observe a ~t_prev:2.0 ~t_now:3.0 ~vm:(vm 0.0);
  Helpers.check_close ~tol:1e-12 "interpolated upstroke" 2.5
    (Activation.first_time a 0);
  Alcotest.(check int) "one activation" 1 (Activation.activated a);
  (* dips below threshold but not below reset: no rearm, no reactivation *)
  Activation.observe a ~t_prev:3.0 ~t_now:4.0 ~vm:(vm (-40.0));
  Activation.observe a ~t_prev:4.0 ~t_now:5.0 ~vm:(vm 0.0);
  Alcotest.(check int) "no rearm above reset" 0 (Activation.reactivations a 0);
  (* full repolarization below reset, then a second upstroke: reentry *)
  Activation.observe a ~t_prev:5.0 ~t_now:6.0 ~vm:(vm (-70.0));
  Activation.observe a ~t_prev:6.0 ~t_now:7.0 ~vm:(vm 0.0);
  Alcotest.(check int) "reactivation counted" 1 (Activation.reactivations a 0);
  Alcotest.(check int) "reactivated cells" 1 (Activation.reactivated a)

(* -- monodomain engine ----------------------------------------------- *)

let cable_sim ?engine ?(nthreads = 1) ?(splitting = Monodomain.Godunov)
    ?(n = 60) ?(sigma = 0.001) () =
  let geom = Geometry.cable ~n ~dx:0.01 in
  let config = { Monodomain.default_config with splitting; sigma } in
  Monodomain.create ?engine ~config ~nthreads (fixture_gen ()) ~geom ~dt:0.01
    ~protocol:(Protocol.s1 geom)

let vm_bits (m : Monodomain.t) : Int64.t array =
  let d = Monodomain.driver m in
  let vm = Sim.Driver.ext_buffer d "Vm" in
  Array.init d.Sim.Driver.ncells (fun i ->
      Int64.bits_of_float (Float.Array.get vm i))

let test_splitting_order_godunov () =
  (* Pin the Godunov ordering: (1) ionic stage at the current state,
     (2) rhs = Vm + dt·(Istim(t_pre) − Iion)/Cm, (3) implicit diffusion
     — bitwise identical to a hand-rolled replica. *)
  let n = 16 and dt = 0.01 and sigma = 0.001 in
  let geom = Geometry.cable ~n ~dx:0.01 in
  let proto = Protocol.s1 geom in
  let sim =
    Monodomain.create
      ~config:{ Monodomain.default_config with sigma }
      (fixture_gen ()) ~geom ~dt ~protocol:proto
  in
  let d = Sim.Driver.create (fixture_gen ()) ~ncells:n ~dt in
  let vm = Sim.Driver.ext_buffer d "Vm" in
  let iion = Sim.Driver.ext_buffer d "Iion" in
  let op = Diffusion.assemble geom ~sigma ~dt in
  let rhs = Float.Array.make n 0.0 in
  for _ = 1 to 200 do
    Monodomain.step sim;
    let t0 = Sim.Driver.time d in
    Sim.Driver.compute_stage d;
    for i = 0 to n - 1 do
      Float.Array.set rhs i
        (Float.Array.get vm i
        +. 0.01
           *. (Protocol.current proto ~t:t0 ~cell:i
              -. Float.Array.get iion i))
    done;
    let x = Diffusion.solve op rhs in
    Float.Array.blit x 0 vm 0 n;
    for i = n to Float.Array.length vm - 1 do
      Float.Array.set vm i (Float.Array.get x (n - 1))
    done;
    Sim.Driver.tick d
  done;
  let got = vm_bits sim in
  for i = 0 to n - 1 do
    if not (Int64.equal got.(i) (Int64.bits_of_float (Float.Array.get vm i)))
    then
      Alcotest.failf "godunov order drifted at cell %d: %h vs %h" i
        (Int64.float_of_bits got.(i))
        (Float.Array.get vm i)
  done

let test_splitting_order_strang () =
  (* Pin the Strang ordering: half diffusion, full ionic stage plus the
     explicit reaction update, half diffusion. *)
  let n = 16 and dt = 0.01 and sigma = 0.001 in
  let geom = Geometry.cable ~n ~dx:0.01 in
  let proto = Protocol.s1 geom in
  let sim =
    Monodomain.create
      ~config:
        { Monodomain.default_config with sigma; splitting = Monodomain.Strang }
      (fixture_gen ()) ~geom ~dt ~protocol:proto
  in
  let d = Sim.Driver.create (fixture_gen ()) ~ncells:n ~dt in
  let vm = Sim.Driver.ext_buffer d "Vm" in
  let iion = Sim.Driver.ext_buffer d "Iion" in
  let op_half = Diffusion.assemble geom ~sigma ~dt:(dt /. 2.0) in
  let rhs = Float.Array.make n 0.0 in
  let half () =
    Float.Array.blit vm 0 rhs 0 n;
    let x = Diffusion.solve op_half rhs in
    Float.Array.blit x 0 vm 0 n;
    for i = n to Float.Array.length vm - 1 do
      Float.Array.set vm i (Float.Array.get x (n - 1))
    done
  in
  for _ = 1 to 200 do
    Monodomain.step sim;
    let t0 = Sim.Driver.time d in
    half ();
    Sim.Driver.compute_stage d;
    for i = 0 to n - 1 do
      Float.Array.set vm i
        (Float.Array.get vm i
        +. 0.01
           *. (Protocol.current proto ~t:t0 ~cell:i
              -. Float.Array.get iion i))
    done;
    half ();
    Sim.Driver.tick d
  done;
  let got = vm_bits sim in
  for i = 0 to n - 1 do
    if not (Int64.equal got.(i) (Int64.bits_of_float (Float.Array.get vm i)))
    then
      Alcotest.failf "strang order drifted at cell %d: %h vs %h" i
        (Int64.float_of_bits got.(i))
        (Float.Array.get vm i)
  done

let run_cable (sim : Monodomain.t) ~steps =
  ignore (Monodomain.run sim ~steps);
  sim

let assert_same_trajectory name a b =
  let ba = vm_bits a and bb = vm_bits b in
  Array.iteri
    (fun i va ->
      if not (Int64.equal va bb.(i)) then
        Alcotest.failf "%s: Vm differs at cell %d" name i)
    ba;
  let aa = Monodomain.activation a and ab = Monodomain.activation b in
  for i = 0 to Array.length ba - 1 do
    if not (Helpers.same_float (Activation.first_time aa i)
              (Activation.first_time ab i))
    then Alcotest.failf "%s: activation time differs at cell %d" name i
  done

let test_engines_bitwise () =
  let steps = 2000 in
  let fused = run_cable (cable_sim ~engine:Sim.Driver.Fused ()) ~steps in
  let batched = run_cable (cable_sim ~engine:Sim.Driver.Batched ()) ~steps in
  assert_same_trajectory "fused vs batched" fused batched

let test_threads_bitwise () =
  let steps = 2000 in
  let t1 = run_cable (cable_sim ~nthreads:1 ()) ~steps in
  let t2 = run_cable (cable_sim ~nthreads:2 ()) ~steps in
  assert_same_trajectory "1T vs 2T" t1 t2

(* ordered-int ULP distance (same sign assumed; 0 for exact equality) *)
let ulp_diff (a : float) (b : float) : int64 =
  if Float.equal a b then 0L
  else
    let key f =
      let i = Int64.bits_of_float f in
      if Int64.compare i 0L >= 0 then i else Int64.sub Int64.min_int i
    in
    Int64.abs (Int64.sub (key a) (key b))

let test_native_ulp_bound () =
  (* The native (JIT-C) engine is documented to stay within 2 ULP of the
     interpreted engines per step; in practice it is bitwise identical.
     Skipped when no C toolchain is available (the driver degrades to
     batched, already covered above). *)
  match Exec.Native.toolchain () with
  | None -> ()
  | Some _ ->
      let steps = 2000 in
      let native = cable_sim ~engine:Sim.Driver.Native () in
      if
        (Monodomain.driver native).Sim.Driver.engine <> Sim.Driver.Native
      then ()
      else begin
        ignore (Monodomain.run native ~steps);
        let fused = run_cable (cable_sim ()) ~steps in
        let vf = Sim.Driver.ext_buffer (Monodomain.driver fused) "Vm" in
        let vn = Sim.Driver.ext_buffer (Monodomain.driver native) "Vm" in
        for i = 0 to 59 do
          let d = ulp_diff (Float.Array.get vf i) (Float.Array.get vn i) in
          if Int64.compare d 2L > 0 then
            Alcotest.failf "native Vm off by %Ld ULP at cell %d" d i
        done;
        match
          ( Monodomain.conduction_velocity fused,
            Monodomain.conduction_velocity native )
        with
        | Some a, Some b -> Helpers.check_close ~tol:1e-6 "native CV" a b
        | _ -> Alcotest.fail "both engines must measure a CV"
      end

let test_monotone_activation () =
  let sim = run_cable (cable_sim ~n:100 ()) ~steps:6000 in
  let act = Monodomain.activation sim in
  Alcotest.(check int) "full capture" 100 (Activation.activated act);
  (* beyond the stimulated strip the planar wave arrives strictly later
     at each successive cell *)
  for i = 6 to 98 do
    let ta = Activation.first_time act i
    and tb = Activation.first_time act (i + 1) in
    if not (ta < tb) then
      Alcotest.failf "activation not monotone at cell %d: %g >= %g" i ta tb
  done

let test_cable_cv_golden () =
  (* Deterministic planar-wave regression: the fixture model has no
     transcendentals, so the trajectory is bitwise reproducible and the
     measured CV must match the stored golden to 1e-6 relative (the
     golden file keeps 9 significant digits). *)
  let golden =
    float_of_string (String.trim (read_file "golden/fast_upstroke_cable_cv.txt"))
  in
  let sim = run_cable (cable_sim ~n:100 ()) ~steps:6000 in
  match Monodomain.conduction_velocity sim with
  | None -> Alcotest.fail "planar wave must reach both probes"
  | Some cv -> Helpers.check_close ~tol:1e-6 "golden CV" golden cv

let test_conduction_block_detector () =
  (* σ = 0 decouples the cells: the wave can never leave the stimulated
     strip, so the detector must trip (a hard health trip). *)
  let geom = Geometry.cable ~n:30 ~dx:0.01 in
  let config =
    {
      Monodomain.default_config with
      sigma = 0.0;
      block_check_ms = Some 5.0;
    }
  in
  let sim =
    Monodomain.create ~config (fixture_gen ()) ~geom ~dt:0.01
      ~protocol:(Protocol.s1 geom)
  in
  let warned = ref [] in
  Sim.Driver.enable_health ~warn:(fun m -> warned := m :: !warned)
    (Monodomain.driver sim);
  ignore (Monodomain.run sim ~steps:800);
  Alcotest.(check bool) "detector tripped" true (Monodomain.blocked sim);
  let h = Option.get (Sim.Driver.health (Monodomain.driver sim)) in
  Alcotest.(check bool) "hard trip -> unhealthy" true (Obs.Health.unhealthy h);
  let snap = Obs.Health.snapshot h in
  Alcotest.(check bool) "conduction-block trip recorded" true
    (List.exists
       (fun (t : Obs.Health.trip) ->
         t.Obs.Health.t_reason = Obs.Health.Conduction_block)
       snap.Obs.Health.hs_trips);
  let stats = Monodomain.stats sim in
  Alcotest.(check int) "stats count the trip" 1
    stats.Obs.Export.tt_block_trips

let test_healthy_wave_no_block () =
  let sim =
    let geom = Geometry.cable ~n:60 ~dx:0.01 in
    Monodomain.create
      ~config:{ Monodomain.default_config with block_check_ms = Some 30.0 }
      (fixture_gen ()) ~geom ~dt:0.01 ~protocol:(Protocol.s1 geom)
  in
  Sim.Driver.enable_health (Monodomain.driver sim);
  ignore (Monodomain.run sim ~steps:4000);
  Alcotest.(check bool) "no block" false (Monodomain.blocked sim);
  let h = Option.get (Sim.Driver.health (Monodomain.driver sim)) in
  Alcotest.(check bool) "healthy" false (Obs.Health.unhealthy h)

let test_s1s2_reentry () =
  (* Cross-field S1–S2 on a sheet: the premature S2 meets the S1 wake's
     refractory gradient, blocks unidirectionally and re-excites
     recovered tissue — reactivations well after both stimuli ended. *)
  let geom = Geometry.sheet ~nx:40 ~ny:40 ~dx:0.01 in
  let sim =
    Monodomain.create
      ~config:{ Monodomain.default_config with sigma = 0.0003 }
      (fixture_gen ()) ~geom ~dt:0.01
      ~protocol:(Protocol.s1s2 ~s2_start:65.0 geom)
  in
  ignore (Monodomain.run sim ~steps:12_000);
  let act = Monodomain.activation sim in
  Alcotest.(check int) "sheet fully captured" 1600 (Activation.activated act);
  Alcotest.(check bool) "reentrant reactivation" true
    (Activation.reactivated act > 0);
  (* the spiral re-excites cells long after the S2 (67 ms) ended *)
  let late = ref false in
  for i = 0 to 1599 do
    if
      Activation.reactivations act i > 0
      && Activation.first_time act i < 65.0
    then late := true
  done;
  Alcotest.(check bool) "reactivated cells first activated by S1" true !late

let test_restitution_protocol () =
  (* the pacing train delivers every S1 and the premature S2 *)
  let geom = Geometry.cable ~n:4 ~dx:0.01 in
  let p =
    Protocol.restitution ~amplitude:10.0 ~start:1.0 ~duration:1.0 ~width:2
      ~n_s1:3 ~interval:10.0 ~s2_coupling:5.0 geom
  in
  Alcotest.(check int) "pulse count" 4 (List.length p.Protocol.stims);
  List.iter
    (fun t ->
      Helpers.check_close ~tol:0.0 "stimulated cell sees pulse" 10.0
        (Protocol.current p ~t ~cell:0);
      Helpers.check_close ~tol:0.0 "unstimulated cell silent" 0.0
        (Protocol.current p ~t ~cell:3))
    [ 1.5; 11.5; 21.5; 26.5 ];
  Helpers.check_close ~tol:0.0 "between pulses" 0.0
    (Protocol.current p ~t:8.0 ~cell:0)

let test_prometheus_tissue_families () =
  let sim = run_cable (cable_sim ~n:40 ()) ~steps:3000 in
  let text =
    Obs.Export.prometheus ~tissue:(Monodomain.stats sim)
      (Obs.Tracer.snapshot ())
  in
  (match Obs.Export.validate_prometheus text with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "tissue exposition invalid: %s" e);
  List.iter
    (fun family ->
      Alcotest.(check bool) family true (Helpers.contains text family))
    [
      "limpetmlir_tissue_cells";
      "limpetmlir_tissue_activated_cells";
      "limpetmlir_tissue_activation_coverage";
      "limpetmlir_tissue_reactivated_cells";
      "limpetmlir_tissue_conduction_block_total";
      "limpetmlir_tissue_conduction_velocity_cm_ms";
    ]

let test_activation_map_output () =
  let sim = run_cable (cable_sim ~n:20 ()) ~steps:2500 in
  let act = Monodomain.activation sim in
  let geom = Monodomain.geometry sim in
  let csv = Activation.to_csv act geom in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "csv rows" 21 (List.length lines);
  Alcotest.(check string) "csv header" "cell,x,y,activation_ms,reactivations"
    (List.hd lines);
  let json =
    Activation.to_json ?cv:(Monodomain.conduction_velocity sim) act geom
  in
  Alcotest.(check bool) "json has activation array" true
    (Helpers.contains json "\"activation_ms\"");
  Alcotest.(check bool) "json has cv" true
    (Helpers.contains json "\"conduction_velocity_cm_ms\"")

let suite =
  [
    stim_uniform_bitwise;
    Alcotest.test_case "stim region mask" `Quick test_stim_region;
    geometry_roundtrip;
    Alcotest.test_case "diffusion residual (1D+2D)" `Quick
      test_diffusion_residual;
    Alcotest.test_case "diffusion: flat fixed point" `Quick
      test_diffusion_conserves_flat;
    Alcotest.test_case "activation interpolation + rearm" `Quick
      test_activation_interpolation;
    Alcotest.test_case "godunov order pinned" `Quick
      test_splitting_order_godunov;
    Alcotest.test_case "strang order pinned" `Quick
      test_splitting_order_strang;
    Alcotest.test_case "fused == batched (bitwise)" `Quick
      test_engines_bitwise;
    Alcotest.test_case "1 thread == 2 threads (bitwise)" `Quick
      test_threads_bitwise;
    Alcotest.test_case "native within 2 ULP" `Quick test_native_ulp_bound;
    Alcotest.test_case "monotone activation along cable" `Quick
      test_monotone_activation;
    Alcotest.test_case "cable CV matches golden" `Quick test_cable_cv_golden;
    Alcotest.test_case "conduction-block detector" `Quick
      test_conduction_block_detector;
    Alcotest.test_case "healthy wave: no block" `Quick
      test_healthy_wave_no_block;
    Alcotest.test_case "s1s2 induces reentry (2D)" `Slow test_s1s2_reentry;
    Alcotest.test_case "restitution train" `Quick test_restitution_protocol;
    Alcotest.test_case "prometheus tissue families" `Quick
      test_prometheus_tissue_families;
    Alcotest.test_case "activation map output" `Quick
      test_activation_map_output;
  ]
