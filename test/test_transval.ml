(* Translation-validation tests.

   Three layers:
   - qcheck properties on random lowered loops: the validated pipeline
     proves every pass application AND the optimized kernel stays
     bitwise-identical to the unoptimized one under the closure engine
     (so the symbolic prover and the concrete semantics agree);
     normalization is deterministic and idempotent ({!Transval.self_check});
     widening is proved lane-exact ({!Transval.check_widen});
   - a mutation harness: deliberate miscompiles (dropped store,
     wrong-constant fold, reassociated float add, stale CSE reuse, an
     unsound hoist) injected into each standard pass must each be
     refuted, with the certificate blaming the sabotaged pass;
   - the 43-model sweep: every bundled model, scalar and vector configs,
     default and specialized pipelines, must validate with zero
     refutations and no more Unknowns than the checked-in baseline. *)

open Ir
module B = Ir.Builder
module TV = Analysis.Transval
module P = Passes.Pass
module C = Codegen.Config

(* ---------------------------------------------------------------------- *)
(* qcheck: validated pipeline == interpreter semantics                     *)
(* ---------------------------------------------------------------------- *)

let in1 = Float.Array.init 12 (fun i -> Float.sin (float_of_int (i + 1)))
let in2 = Float.Array.init 12 (fun i -> Float.cos (float_of_int i))

let validated_pipeline ~w name =
  Helpers.qtest ~count:80 name
    (Helpers.arbitrary_expr [ "x"; "y"; "k" ])
    (fun e ->
      let m = Test_specialize.lower_kernel ~w e in
      Ir.Verifier.verify_module_exn m;
      let m0 = Ir.Func.copy_module m in
      let certs = ref [] in
      let validate pass pre post =
        let c = TV.check_module ~pass pre post in
        certs := c :: !certs;
        if TV.is_refuted c then
          QCheck.Test.fail_reportf "pipeline refuted: %s" (TV.cert_to_json c)
      in
      Passes.Pipeline.optimize ~validate m;
      if List.exists TV.is_unknown !certs then
        QCheck.Test.fail_reportf "unexpected Unknown verdict on a random loop";
      if !certs = [] then QCheck.Test.fail_reportf "no certificates recorded";
      (* the proof must agree with the concrete semantics: optimized ==
         unoptimized, bitwise, on the closure engine *)
      let n = 12 in
      let want = Test_specialize.run_kernel ~engine:`Closure m0 ~n ~k:0.7 in1 in2
      and got = Test_specialize.run_kernel ~engine:`Closure m ~n ~k:0.7 in1 in2 in
      let ok = ref true in
      for i = 0 to n - 1 do
        if
          not
            (Helpers.same_float (Float.Array.get got i)
               (Float.Array.get want i))
        then ok := false
      done;
      !ok)

(* Normalization is deterministic and idempotent on every term the
   evaluator builds for a random kernel — the oriented/terminating
   rewrite check. *)
let normalization_stable ~w name =
  Helpers.qtest ~count:120 name
    (Helpers.arbitrary_expr [ "x"; "y"; "k" ])
    (fun e ->
      let m = Test_specialize.lower_kernel ~w e in
      Passes.Pipeline.optimize m;
      match TV.self_check m with
      | Ok n -> n > 0
      | Error msg -> QCheck.Test.fail_reportf "self_check: %s" msg)

(* Widening a random pure scalar function is proved lane-exact. *)
let widen_proved name =
  Helpers.qtest ~count:120 name
    (Helpers.arbitrary_expr [ "x"; "y"; "k" ])
    (fun e ->
      let m = Func.create_module "wtest" in
      let c = B.create_ctx () in
      let f =
        B.func c ~name:"s" ~params:[ Ty.F64; Ty.F64; Ty.F64 ]
          ~results:[ Ty.F64 ]
          (fun b args ->
            let env =
              Codegen.Lower.make_env ~b ~width:1
                [
                  ("x", List.nth args 0);
                  ("y", List.nth args 1);
                  ("k", List.nth args 2);
                ]
            in
            B.ret b [ Codegen.Lower.lower_num env e ])
      in
      Func.add_func m f;
      match Passes.Widen.widen ~w:4 f with
      | exception Passes.Widen.Not_widenable _ -> true
      | fv -> (
          let cert = TV.check_widen ~w:4 f fv in
          match cert.TV.c_verdict with
          | TV.Proved -> true
          | TV.Refuted cx ->
              QCheck.Test.fail_reportf "widen refuted at %s: %s vs %s"
                cx.TV.cx_site cx.TV.cx_src cx.TV.cx_tgt
          | TV.Unknown r ->
              QCheck.Test.fail_reportf "widen unknown: %s" r))

(* ---------------------------------------------------------------------- *)
(* Mutation harness: every miscompile class must be refuted, with the     *)
(* certificate blaming the pass it was injected into.                     *)
(* ---------------------------------------------------------------------- *)

(* Fixture A: a parallel loop doing
     a = (x + y) + k;  t = k * 2.0;  out[i] = a * t
   — has a reassociation target, a foldable-shape BinF and a store. *)
let fixture_loop () : Func.modl =
  let m = Func.create_module "mut_loop" in
  let c = B.create_ctx () in
  Func.add_func m
    (B.func c ~name:"f"
       ~params:[ Ty.Memref; Ty.Memref; Ty.Memref; Ty.I64; Ty.F64 ]
       ~results:[]
       (fun b args ->
         let mem1 = List.nth args 0
         and mem2 = List.nth args 1
         and out = List.nth args 2
         and n = List.nth args 3
         and k = List.nth args 4 in
         ignore
           (B.for_ b ~parallel:true ~lb:(B.consti b 0) ~ub:n
              ~step:(B.consti b 1) ~inits:[]
              (fun ~iv ~iters:_ ->
                let x = B.load b ~mem:mem1 ~idx:iv
                and y = B.load b ~mem:mem2 ~idx:iv in
                let a = B.addf b (B.addf b x y) k in
                let t = B.mulf b k (B.constf b 2.0) in
                B.store b (B.mulf b a t) ~mem:out ~idx:iv;
                []));
         B.ret b []));
  m

(* Fixture B: load / overwrite / reload of the same cell — the reload
   must NOT be CSE'd into the first load. *)
let fixture_reload () : Func.modl =
  let m = Func.create_module "mut_reload" in
  let c = B.create_ctx () in
  Func.add_func m
    (B.func c ~name:"f" ~params:[ Ty.Memref; Ty.Memref ] ~results:[]
       (fun b args ->
         let mem = List.nth args 0 and out = List.nth args 1 in
         let i0 = B.consti b 0 in
         let x = B.load b ~mem ~idx:i0 in
         B.store b (B.addf b x (B.constf b 1.0)) ~mem ~idx:i0;
         let y = B.load b ~mem ~idx:i0 in
         B.store b y ~mem:out ~idx:i0;
         B.ret b []));
  m

(* Fixture C: a loop whose body stores to a cell and then loads it back
   — hoisting that load above the loop is a miscompile. *)
let fixture_hoist () : Func.modl =
  let m = Func.create_module "mut_hoist" in
  let c = B.create_ctx () in
  Func.add_func m
    (B.func c ~name:"f" ~params:[ Ty.Memref; Ty.Memref; Ty.I64; Ty.F64 ]
       ~results:[]
       (fun b args ->
         let mem = List.nth args 0
         and out = List.nth args 1
         and n = List.nth args 2
         and k = List.nth args 3 in
         let i0 = B.consti b 0 in
         ignore
           (B.for_ b ~lb:(B.consti b 0) ~ub:n ~step:(B.consti b 1) ~inits:[]
              (fun ~iv ~iters:_ ->
                B.store b k ~mem ~idx:i0;
                let y = B.load b ~mem ~idx:i0 in
                B.store b y ~mem:out ~idx:iv;
                []));
         B.ret b []));
  m

(* -- sabotage primitives ------------------------------------------------ *)

(* Walk regions outer-to-inner, returning the first region whose op list
   contains an op satisfying [pred]. *)
let rec find_in_region (pred : Op.op -> bool) (r : Op.region) :
    (Op.region * Op.op) option =
  match List.find_opt pred r.Op.r_ops with
  | Some o -> Some (r, o)
  | None ->
      List.fold_left
        (fun acc (o : Op.op) ->
          match acc with
          | Some _ -> acc
          | None ->
              Array.fold_left
                (fun acc sub ->
                  match acc with
                  | Some _ -> acc
                  | None -> find_in_region pred sub)
                None o.Op.regions)
        None r.Op.r_ops

let max_value_id (f : Func.func) : int =
  let m = ref 0 in
  let vid (v : Value.t) = if v.Value.id > !m then m := v.Value.id in
  List.iter vid f.Func.f_params;
  let rec go (r : Op.region) =
    List.iter vid r.Op.r_args;
    List.iter
      (fun (o : Op.op) ->
        Array.iter vid o.Op.operands;
        Array.iter vid o.Op.results;
        Array.iter go o.Op.regions)
      r.Op.r_ops
  in
  go f.Func.f_body;
  !m

let replace_op (r : Op.region) (old : Op.op) (news : Op.op list) : unit =
  r.Op.r_ops <-
    List.concat_map
      (fun o -> if o == old then news else [ o ])
      r.Op.r_ops

(* Dropped op: delete the first store. *)
let sab_drop_store (f : Func.func) : bool =
  let is_store (o : Op.op) =
    match o.Op.kind with Op.MemStore | Op.VecStore -> true | _ -> false
  in
  match find_in_region is_store f.Func.f_body with
  | None -> false
  | Some (r, o) ->
      r.Op.r_ops <- List.filter (fun x -> x != o) r.Op.r_ops;
      true

(* Wrong-constant fold: replace the first scalar float BinF by a
   constant that is not its value. *)
let sab_wrong_fold (f : Func.func) : bool =
  let is_target (o : Op.op) =
    match o.Op.kind with
    | Op.BinF _ -> o.Op.results.(0).Value.ty = Ty.F64
    | _ -> false
  in
  match find_in_region is_target f.Func.f_body with
  | None -> false
  | Some (r, o) ->
      replace_op r o
        [
          {
            Op.o_id = 1_000_001;
            kind = Op.ConstF 0.1251;
            operands = [||];
            results = o.Op.results;
            regions = [||];
          };
        ];
      true

(* Reassociated float add: rewrite (a + b) + c into a + (b + c). *)
let sab_reassoc (f : Func.func) : bool =
  let defs : (int, Op.op) Hashtbl.t = Hashtbl.create 64 in
  let rec index (r : Op.region) =
    List.iter
      (fun (o : Op.op) ->
        Array.iter (fun (v : Value.t) -> Hashtbl.replace defs v.Value.id o)
          o.Op.results;
        Array.iter index o.Op.regions)
      r.Op.r_ops
  in
  index f.Func.f_body;
  let inner_add (v : Value.t) =
    match Hashtbl.find_opt defs v.Value.id with
    | Some { Op.kind = Op.BinF Op.FAdd; operands = [| a; b |]; _ } ->
        Some (a, b)
    | _ -> None
  in
  let is_target (o : Op.op) =
    match o.Op.kind with
    | Op.BinF Op.FAdd -> inner_add o.Op.operands.(0) <> None
    | _ -> false
  in
  match find_in_region is_target f.Func.f_body with
  | None -> false
  | Some (r, o) ->
      let a, b =
        match inner_add o.Op.operands.(0) with
        | Some ab -> ab
        | None -> assert false
      in
      let c = o.Op.operands.(1) in
      let bc = { Value.id = max_value_id f + 1; ty = Ty.F64 } in
      let mk_add id operands results =
        {
          Op.o_id = id;
          kind = Op.BinF Op.FAdd;
          operands;
          results;
          regions = [||];
        }
      in
      replace_op r o
        [
          mk_add 1_000_002 [| b; c |] [| bc |];
          mk_add 1_000_003 [| a; bc |] o.Op.results;
        ];
      true

(* Stale CSE reuse: rewrite uses of a reload to the pre-store load of
   the same cell. *)
let sab_stale_cse (f : Func.func) : bool =
  let first_load = ref None and second_load = ref None in
  Op.iter_region
    (fun (o : Op.op) ->
      match (o.Op.kind, !first_load) with
      | Op.MemLoad, None -> first_load := Some o
      | Op.MemLoad, Some fst_ when !second_load = None ->
          if
            fst_.Op.operands.(0).Value.id = o.Op.operands.(0).Value.id
            && fst_.Op.operands.(1).Value.id = o.Op.operands.(1).Value.id
          then second_load := Some o
      | _ -> ())
    f.Func.f_body;
  match (!first_load, !second_load) with
  | Some l1, Some l2 ->
      let from = l2.Op.results.(0) and into = l1.Op.results.(0) in
      Op.iter_region
        (fun (o : Op.op) ->
          Array.iteri
            (fun i (v : Value.t) ->
              if v.Value.id = from.Value.id then o.Op.operands.(i) <- into)
            o.Op.operands)
        f.Func.f_body;
      true
  | _ -> false

(* Unsound hoist: move the loop-body load above the loop. *)
let sab_hoist_load (f : Func.func) : bool =
  let body = f.Func.f_body in
  let for_op =
    List.find_opt
      (fun (o : Op.op) ->
        match o.Op.kind with Op.For _ -> true | _ -> false)
      body.Op.r_ops
  in
  match for_op with
  | None -> false
  | Some fo -> (
      let loop_body = fo.Op.regions.(0) in
      match
        List.find_opt
          (fun (o : Op.op) -> o.Op.kind = Op.MemLoad)
          loop_body.Op.r_ops
      with
      | None -> false
      | Some load ->
          loop_body.Op.r_ops <-
            List.filter (fun o -> o != load) loop_body.Op.r_ops;
          body.Op.r_ops <-
            List.concat_map
              (fun o -> if o == fo then [ load; fo ] else [ o ])
              body.Op.r_ops;
          true)

(* -- the harness -------------------------------------------------------- *)

exception Refutation of TV.cert

(* Run the standard pipeline on [m] with [sab] spliced into the pass
   named [pass] (first application only), validating every step; return
   the first refutation's certificate. *)
let run_sabotaged ~(pass : string) (sab : Func.func -> bool)
    (m : Func.modl) : TV.cert option =
  let fired = ref false in
  let wrap (p : P.t) : P.t =
    {
      P.name = p.P.name;
      run =
        (fun fn ->
          let changed = p.P.run fn in
          if !fired then changed
          else begin
            fired := true;
            let s = sab fn in
            if not s then
              Alcotest.failf "sabotage for %s found no target" pass;
            s || changed
          end);
    }
  in
  let pipeline =
    List.map
      (fun (p : P.t) -> if String.equal p.P.name pass then wrap p else p)
      Passes.Pipeline.standard
  in
  let validate name pre post =
    let c = TV.check_module ~pass:name pre post in
    if TV.is_refuted c then raise (Refutation c)
    else if TV.is_unknown c then
      Alcotest.failf "unexpected Unknown during mutation run of %s" pass
  in
  match P.run_pipeline ~validate pipeline m with
  | () -> None
  | exception Refutation c -> Some c

let assert_refutes ~pass sab fixture () =
  let m = fixture () in
  Ir.Verifier.verify_module_exn m;
  (* un-sabotaged control: the same fixture validates cleanly *)
  let control = Ir.Func.copy_module m in
  let validate name pre post =
    let c = TV.check_module ~pass:name pre post in
    if not (c.TV.c_verdict = TV.Proved) then
      Alcotest.failf "control run not proved at %s: %s" name
        (TV.cert_to_json c)
  in
  P.run_pipeline ~validate Passes.Pipeline.standard control;
  match run_sabotaged ~pass sab m with
  | None -> Alcotest.failf "miscompile injected into %s was not refuted" pass
  | Some c ->
      Alcotest.(check string) "responsible pass" pass c.TV.c_pass;
      (match c.TV.c_verdict with
      | TV.Refuted cx ->
          Alcotest.(check bool) "counterexample has diverging terms" true
            (String.length cx.TV.cx_src > 0 && String.length cx.TV.cx_tgt > 0)
      | _ -> Alcotest.fail "certificate is not a refutation");
      (* the refutation surfaces as an Error diagnostic naming the pass *)
      (match TV.diag_of_cert c with
      | Some d ->
          Alcotest.(check bool) "diag is an error" true (Easyml.Diag.is_error d);
          Alcotest.(check (option string)) "diag pass id" (Some pass)
            d.Easyml.Diag.pass
      | None -> Alcotest.fail "refutation produced no diagnostic")

(* ---------------------------------------------------------------------- *)
(* 43-model sweep: default + specialized pipelines, zero refutations      *)
(* ---------------------------------------------------------------------- *)

let unknown_baseline () =
  let name = "transval_unknown_baseline.txt" in
  let candidates =
    [
      name;
      Filename.concat "test" name;
      Filename.concat (Filename.dirname Sys.executable_name) name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.failf "baseline file %s not found" name
  | Some path ->
      let ic = open_in path in
      let n = int_of_string (String.trim (input_line ic)) in
      close_in ic;
      n

let test_sweep () =
  Codegen.Cache.set_validation true;
  Codegen.Cache.clear ();
  Fun.protect
    ~finally:(fun () ->
      Codegen.Cache.set_validation false;
      Codegen.Cache.clear ())
    (fun () ->
      List.iter
        (fun (e : Models.Model_def.entry) ->
          List.iter
            (fun cfg ->
              let g =
                Codegen.Cache.generate_named cfg ~name:e.name (fun () ->
                    Models.Registry.model e)
              in
              ignore (Codegen.Cache.specialize g ~dt:0.02 ~ncells_pad:32))
            [ C.baseline; C.mlir ~width:8 ])
        Models.Registry.all;
      let certs = Codegen.Cache.certificates () in
      let total = ref 0 and unknown = ref 0 and refuted = ref 0 in
      List.iter
        (fun (_, cs) ->
          List.iter
            (fun (c : TV.cert) ->
              incr total;
              if TV.is_refuted c then begin
                incr refuted;
                Fmt.epr "REFUTED: %s@." (TV.cert_to_json c)
              end
              else if TV.is_unknown c then begin
                incr unknown;
                Fmt.epr "UNKNOWN: %s@." (TV.cert_to_json c)
              end)
            cs)
        certs;
      Alcotest.(check int) "zero refutations" 0 !refuted;
      Alcotest.(check bool)
        (Printf.sprintf "Unknown count %d within baseline" !unknown)
        true
        (!unknown <= unknown_baseline ());
      (* every model contributes certificates for both configs, default
         and specialized pipelines *)
      let nmodels = List.length Models.Registry.all in
      Alcotest.(check bool)
        (Printf.sprintf "expected coverage (got %d certificates)" !total)
        true
        (!total >= nmodels * 2 * 2))

(* The specialize composite obligation is part of the sweep; check its
   pass id is present so CI can gate on it. *)
let test_specialize_obligation () =
  Codegen.Cache.set_validation true;
  Codegen.Cache.clear ();
  Fun.protect
    ~finally:(fun () ->
      Codegen.Cache.set_validation false;
      Codegen.Cache.clear ())
    (fun () ->
      let e = Models.Registry.find_exn "MitchellSchaeffer" in
      let g =
        Codegen.Cache.generate_named C.baseline ~name:e.name (fun () ->
            Models.Registry.model e)
      in
      ignore (Codegen.Cache.specialize g ~dt:0.015 ~ncells_pad:16);
      let passes =
        List.concat_map
          (fun (_, cs) -> List.map (fun (c : TV.cert) -> c.TV.c_pass) cs)
          (Codegen.Cache.certificates ())
      in
      Alcotest.(check bool) "composite specialize obligation recorded" true
        (List.mem "specialize" passes))

let suite =
  [
    validated_pipeline ~w:1
      "validated pipeline proves + preserves random scalar loops";
    validated_pipeline ~w:4
      "validated pipeline proves + preserves random vector loops";
    normalization_stable ~w:1 "normalization deterministic and idempotent";
    widen_proved "widening proved lane-exact on random pure functions";
    Alcotest.test_case "mutation: dce drops a store -> refuted" `Quick
      (assert_refutes ~pass:"dce" sab_drop_store fixture_loop);
    Alcotest.test_case "mutation: const-fold folds wrong constant -> refuted"
      `Quick
      (assert_refutes ~pass:"const-fold" sab_wrong_fold fixture_loop);
    Alcotest.test_case "mutation: canonicalize reassociates fadd -> refuted"
      `Quick
      (assert_refutes ~pass:"canonicalize" sab_reassoc fixture_loop);
    Alcotest.test_case "mutation: cse reuses stale load -> refuted" `Quick
      (assert_refutes ~pass:"cse" sab_stale_cse fixture_reload);
    Alcotest.test_case "mutation: licm hoists load past store -> refuted"
      `Quick
      (assert_refutes ~pass:"licm" sab_hoist_load fixture_hoist);
    Alcotest.test_case "43-model sweep: default + specialized, 0 refutations"
      `Slow test_sweep;
    Alcotest.test_case "specialize composite obligation recorded" `Quick
      test_specialize_obligation;
  ]
